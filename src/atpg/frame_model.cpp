#include "atpg/frame_model.h"

#include <algorithm>
#include <cassert>

namespace gatpg::atpg {

using netlist::GateType;
using netlist::NodeId;
using sim::V3;

// -- Flat-layout gate kernels ------------------------------------------------
//
// Each kernel folds a gate over the composite bytes of its fanins, producing
// both planes of the output byte in one pass.  The 0x05/0x0A masks pick the
// v1/v0 bits of both (v1, v0) pairs at once, so the ternary AND/OR/NOT
// algebra runs on good and faulty simultaneously:
//
//   and: v1 = a.v1 & b.v1            or: v1 = a.v1 | b.v1
//        v0 = a.v0 | b.v0                v0 = a.v0 & b.v0
//   not: swap the v1/v0 bit of each pair
//
// (0 dominates AND through the v0 bit, 1 dominates OR through the v1 bit,
// X = 00 stays X unless dominated — the same algebra PackedV3 uses wordwise.)
namespace {

constexpr std::uint8_t kV1 = compbits::kV1Mask;
constexpr std::uint8_t kV0 = compbits::kV0Mask;

inline std::uint8_t c_not(std::uint8_t a) {
  return static_cast<std::uint8_t>(((a & kV1) << 1) | ((a & kV0) >> 1));
}
inline std::uint8_t c_and(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>((a & b & kV1) | ((a | b) & kV0));
}
inline std::uint8_t c_or(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(((a | b) & kV1) | (a & b & kV0));
}
inline std::uint8_t c_xor(std::uint8_t a, std::uint8_t b) {
  // Separate the "is 1" / "is 0" predicates of both pairs, then
  // 1 = (1,0)|(0,1) and 0 = (1,1)|(0,0) — X (neither bit) yields X.
  const std::uint8_t a1 = a & kV1;
  const std::uint8_t a0 = (a >> 1) & kV1;
  const std::uint8_t b1 = b & kV1;
  const std::uint8_t b0 = (b >> 1) & kV1;
  const std::uint8_t r1 = (a1 & b0) | (a0 & b1);
  const std::uint8_t r0 = (a1 & b1) | (a0 & b0);
  return static_cast<std::uint8_t>(r1 | (r0 << 1));
}

// Conditional forcing shared by both layouts: `ls` is launch_state() for
// transition faults, or a constant 1 for stuck-at faults (always forced).
inline V3 gate_transition(V3 normal, V3 forced, int ls) {
  if (ls == 1) return forced;
  if (ls == 0) return normal;
  return normal == forced ? normal : V3::kX;  // X launch: merge
}

std::uint8_t cg_buf(const std::uint8_t* row, const NodeId* ins, std::size_t) {
  return row[ins[0]];
}
std::uint8_t cg_not(const std::uint8_t* row, const NodeId* ins, std::size_t) {
  return c_not(row[ins[0]]);
}
template <std::uint8_t (*Op)(std::uint8_t, std::uint8_t), bool kInvert>
std::uint8_t cg_fold(const std::uint8_t* row, const NodeId* ins,
                     std::size_t n) {
  std::uint8_t acc = row[ins[0]];
  for (std::size_t i = 1; i < n; ++i) acc = Op(acc, row[ins[i]]);
  return kInvert ? c_not(acc) : acc;
}

using CompGateFn = std::uint8_t (*)(const std::uint8_t*, const NodeId*,
                                    std::size_t);
// Indexed by GateType; sources/DFFs/constants never dispatch through it.
constexpr std::array<CompGateFn, 12> kCompGateTable = {
    nullptr,                 // kInput
    &cg_buf,                 // kBuf
    &cg_not,                 // kNot
    &cg_fold<c_and, false>,  // kAnd
    &cg_fold<c_and, true>,   // kNand
    &cg_fold<c_or, false>,   // kOr
    &cg_fold<c_or, true>,    // kNor
    &cg_fold<c_xor, false>,  // kXor
    &cg_fold<c_xor, true>,   // kXnor
    nullptr,                 // kDff
    nullptr,                 // kConst0
    nullptr,                 // kConst1
};

}  // namespace

FrameModel::FrameModel(const netlist::Circuit& c,
                       std::optional<fault::Fault> fault, unsigned max_frames,
                       FrameModelConfig config)
    : circuit_(c) {
  reset(std::move(fault), max_frames, config);
}

void FrameModel::reset(std::optional<fault::Fault> fault, unsigned max_frames,
                       FrameModelConfig config) {
  assert(max_frames >= 1);
  fault_ = std::move(fault);
  fault_node_ = fault_ ? fault_->node : kNoFaultNode;
  trans_ = fault_ && fault_->is_transition();
  launch_line_ = kNoFaultNode;
  launch_skew_ = 1;
  if (trans_) {
    if (fault_->pin == fault::kOutputPin) {
      launch_line_ = fault_->node;
    } else {
      launch_line_ =
          circuit_.fanins(fault_->node)[static_cast<std::size_t>(fault_->pin)];
      if (circuit_.type(fault_->node) == GateType::kDff) launch_skew_ = 2;
    }
  }
  max_frames_ = max_frames;
  config_ = config;
  frame_count_ = 1;
  stats_ = {};
  trail_.clear();
  const auto& c = circuit_;
  node_stride_ = c.node_count();
  pi_stride_ = c.primary_inputs().size();
  const std::size_t cells =
      static_cast<std::size_t>(max_frames_) * c.node_count();
  if (config_.flat) {
    if (comp_.capacity() < cells) ++buffer_grows_;
    comp_.assign(cells, compbits::pack_same(V3::kX));
    if (comp_fn_.empty()) {
      comp_fn_.resize(c.node_count(), nullptr);
      for (NodeId n = 0; n < c.node_count(); ++n) {
        comp_fn_[n] = kCompGateTable[static_cast<std::size_t>(c.type(n))];
      }
    }
    good_.clear();
    faulty_.clear();
  } else {
    if (good_.capacity() < max_frames_) ++buffer_grows_;
    good_.resize(max_frames_);
    for (auto& vals : good_) vals.assign(c.node_count(), V3::kX);
    if (fault_) {
      faulty_.resize(max_frames_);
      for (auto& vals : faulty_) vals.assign(c.node_count(), V3::kX);
    } else {
      faulty_.clear();
    }
  }
  pi_assign_.assign(
      static_cast<std::size_t>(max_frames_) * c.primary_inputs().size(),
      V3::kX);
  state_assign_.assign(c.flip_flops().size(), V3::kX);
  if (config_.incremental) {
    init_incremental();
    recompute_frame(0);
    // Mark 0 is the post-construction state: the trail starts empty, the
    // summaries stay (they describe the values just computed).
    trail_.clear();
  } else {
    simulate();
  }
}

void FrameModel::init_incremental() {
  const auto& c = circuit_;
  level_stride_ = static_cast<std::size_t>(c.max_level()) + 1;
  const std::size_t cells =
      static_cast<std::size_t>(max_frames_) * c.node_count();
  const std::size_t bucket_count =
      static_cast<std::size_t>(max_frames_) * level_stride_;
  if (level_base_.empty()) {  // circuit-static: level → slab offset
    level_base_.assign(level_stride_ + 1, 0);
    for (NodeId n = 0; n < c.node_count(); ++n) ++level_base_[c.level(n) + 1];
    for (std::size_t l = 1; l <= level_stride_; ++l) {
      level_base_[l] += level_base_[l - 1];
    }
    // Per-node enqueue caches: level key and bucket slab offset in one
    // indexed load each (level_base_[level(n)] is a dependent chain).
    node_level_.assign(c.node_count(), 0);
    node_slab_.assign(c.node_count(), 0);
    for (NodeId n = 0; n < c.node_count(); ++n) {
      node_level_[n] = c.level(n);
      node_slab_[n] = level_base_[c.level(n)];
    }
  }
  if (in_queue_.capacity() < cells) ++buffer_grows_;
  qbuf_.resize(cells);  // contents are written before being read
  qfill_.assign(bucket_count, 0);
  queue_cursor_ = bucket_count;
  queue_pending_ = 0;
  in_queue_.assign(cells, 0);
  if (fault_) {
    po_d_count_.assign(max_frames_, 0);
    ffin_d_count_.assign(max_frames_, 0);
    if (ff_consumer_count_.empty()) {  // circuit-static
      ff_consumer_count_.assign(c.node_count(), 0);
      for (NodeId ff : c.flip_flops()) ++ff_consumer_count_[c.fanins(ff)[0]];
    }
    if (topo_pos_.empty()) {  // circuit-static
      topo_pos_.assign(c.node_count(), 0);
      const auto topo = c.topo_order();
      for (std::size_t i = 0; i < topo.size(); ++i) {
        topo_pos_[topo[i]] = static_cast<std::uint32_t>(i);
      }
    }
    in_frontier_.assign(cells, 0);
    listed_.assign(cells, 0);
    frontier_arena_.resize(cells);
    frontier_fill_.assign(max_frames_, 0);
  }
}

bool FrameModel::extend() {
  if (frame_count_ >= max_frames_) return false;
  ++frame_count_;
  if (config_.incremental) recompute_frame(frame_count_ - 1);
  return true;
}

void FrameModel::set_frame_count(unsigned n) {
  assert(n >= 1 && n <= max_frames_);
  if (!config_.incremental || n <= frame_count_) {
    // Shrinking never releases storage: every buffer stays sized for
    // max_frames_, so shrink/grow cycles while backtracking over window
    // extensions cost no allocation (see buffer_grows()).
    frame_count_ = n;
    return;
  }
  // Growth: newly active frames hold stale (or never-computed) values and
  // must be rebuilt from the current assignments, oldest first so each
  // frame's flip-flops read a finished predecessor frame.
  while (frame_count_ < n) {
    ++frame_count_;
    recompute_frame(frame_count_ - 1);
  }
}

void FrameModel::assign_pi(unsigned frame, std::size_t pi_index, V3 v) {
  V3& slot = pi_assign_[pi_cell(frame, pi_index)];
  if (!config_.incremental) {
    slot = v;
    return;
  }
  if (slot == v) return;
  trail_.push_back(
      {TrailEntry::kPi, slot, frame, static_cast<std::uint32_t>(pi_index)});
  slot = v;
  if (frame < frame_count_) {
    // Inactive frames pick the assignment up when they are activated
    // (recompute_frame reads pi_assign_ directly).
    enqueue(frame, circuit_.primary_inputs()[pi_index]);
    propagate();
  }
}

void FrameModel::clear_pi(unsigned frame, std::size_t pi_index) {
  assign_pi(frame, pi_index, V3::kX);
}

void FrameModel::assign_state(std::size_t ff_index, V3 v) {
  V3& slot = state_assign_[ff_index];
  if (!config_.incremental) {
    slot = v;
    return;
  }
  if (slot == v) return;
  trail_.push_back(
      {TrailEntry::kState, slot, 0, static_cast<std::uint32_t>(ff_index)});
  slot = v;
  enqueue(0, circuit_.flip_flops()[ff_index]);  // frame 0 is always active
  propagate();
}

void FrameModel::clear_state(std::size_t ff_index) {
  assign_state(ff_index, V3::kX);
}

// -- Legacy-layout evaluation ------------------------------------------------

V3 FrameModel::eval_node(const std::vector<std::vector<V3>>& plane,
                         unsigned frame, NodeId n, bool inject) {
  const auto& c = circuit_;
  const fault::Fault* f = inject && fault_ ? &*fault_ : nullptr;
  const GateType t = c.type(n);
  switch (t) {
    case GateType::kInput: {
      V3 v = pi_assign_[pi_cell(frame, static_cast<std::size_t>(c.pi_index(n)))];
      if (f && f->node == n && f->pin == fault::kOutputPin) {
        v = gate_transition(v, f->stuck_at ? V3::k1 : V3::k0,
                            trans_ ? launch_state(frame) : 1);
      }
      return v;
    }
    case GateType::kDff: {
      V3 v;
      if (frame == 0) {
        v = state_assign_[static_cast<std::size_t>(c.ff_index(n))];
      } else {
        // Next-state: the D fanin of the flip-flop in the previous frame,
        // with an injected D-pin fault applied if present.
        v = plane[frame - 1][c.fanins(n)[0]];
        if (f && f->node == n && f->pin == 0) {
          v = gate_transition(v, f->stuck_at ? V3::k1 : V3::k0,
                              trans_ ? launch_state(frame) : 1);
        }
      }
      if (f && f->node == n && f->pin == fault::kOutputPin) {
        v = gate_transition(v, f->stuck_at ? V3::k1 : V3::k0,
                            trans_ ? launch_state(frame) : 1);
      }
      return v;
    }
    case GateType::kConst0:
      return V3::k0;
    case GateType::kConst1:
      return V3::k1;
    default: {
      ++stats_.gate_evals;
      const auto& vals = plane[frame];
      V3 v;
      if (f && f->node == n && f->pin >= 0) {
        // Evaluate with the faulted pin forced.  The pin is identified by
        // position, not node id (one driver may feed several pins).
        const auto fanins = c.fanins(n);
        const auto fp = static_cast<std::size_t>(f->pin);
        const V3 pin_v =
            gate_transition(vals[fanins[fp]], f->stuck_at ? V3::k1 : V3::k0,
                            trans_ ? launch_state(frame) : 1);
        v = sim::eval_gate_scalar_pos(t, fanins.size(), [&](std::size_t i) {
          return i == fp ? pin_v : vals[fanins[i]];
        });
      } else {
        v = sim::eval_gate_scalar(t, c.fanins(n),
                                  [&](NodeId in) { return vals[in]; });
      }
      if (f && f->node == n && f->pin == fault::kOutputPin) {
        v = gate_transition(v, f->stuck_at ? V3::k1 : V3::k0,
                            trans_ ? launch_state(frame) : 1);
      }
      return v;
    }
  }
}

void FrameModel::simulate_plane(std::vector<std::vector<V3>>& plane,
                                bool inject) {
  const auto& c = circuit_;
  for (unsigned t = 0; t < frame_count_; ++t) {
    auto& vals = plane[t];
    for (NodeId pi : c.primary_inputs()) {
      vals[pi] = eval_node(plane, t, pi, inject);
    }
    for (NodeId ff : c.flip_flops()) {
      vals[ff] = eval_node(plane, t, ff, inject);
    }
    for (NodeId n = 0; n < c.node_count(); ++n) {
      if (c.type(n) == GateType::kConst0) vals[n] = V3::k0;
      if (c.type(n) == GateType::kConst1) vals[n] = V3::k1;
    }
    for (NodeId g : c.topo_order()) {
      vals[g] = eval_node(plane, t, g, inject);
    }
  }
}

// -- Flat-layout evaluation --------------------------------------------------

std::uint8_t FrameModel::compute_comp(unsigned frame, NodeId n) {
  const auto& c = circuit_;
  if (n == fault_node_) return compute_comp_faulted(frame, n);
  // The kernel table doubles as the gate test (sources/DFFs/constants hold
  // nullptr), so the hot case needs no GateType load or switch.
  if (const CompGateFn fn = comp_fn_[n]) {
    // One kernel call evaluates both planes; count per plane exactly like
    // the legacy path (2 with a faulty plane, 1 without).
    stats_.gate_evals += fault_ ? 2 : 1;
    const auto fanins = c.fanins(n);
    return fn(comp_.data() + cell(frame, 0), fanins.data(), fanins.size());
  }
  switch (c.type(n)) {
    case GateType::kInput:
      return compbits::pack_same(
          pi_assign_[pi_cell(frame, static_cast<std::size_t>(c.pi_index(n)))]);
    case GateType::kDff:
      if (frame == 0) {
        return compbits::pack_same(
            state_assign_[static_cast<std::size_t>(c.ff_index(n))]);
      }
      // Both planes of the previous frame's D fanin in one byte copy.
      return comp_[cell(frame - 1, c.fanins(n)[0])];
    case GateType::kConst1:
      return compbits::pack_same(V3::k1);
    default:
      return compbits::pack_same(V3::k0);  // kConst0
  }
}

int FrameModel::launch_state(unsigned frame) const {
  if (frame < launch_skew_) return 0;  // power-up frames cannot launch
  const V3 launch = good(frame - launch_skew_, launch_line_);
  if (launch == (fault_->stuck_at ? V3::k1 : V3::k0)) return 1;
  return launch == V3::kX ? 2 : 0;
}

std::uint8_t FrameModel::compute_comp_faulted(unsigned frame, NodeId n) {
  const auto& c = circuit_;
  const fault::Fault& f = *fault_;
  const V3 forced = f.stuck_at ? V3::k1 : V3::k0;
  const int ls = trans_ ? launch_state(frame) : 1;
  const GateType t = c.type(n);
  switch (t) {
    case GateType::kInput: {
      const V3 g =
          pi_assign_[pi_cell(frame, static_cast<std::size_t>(c.pi_index(n)))];
      return compbits::pack(
          g, f.pin == fault::kOutputPin ? gate_transition(g, forced, ls) : g);
    }
    case GateType::kDff: {
      V3 g, fy;
      if (frame == 0) {
        g = fy = state_assign_[static_cast<std::size_t>(c.ff_index(n))];
      } else {
        const std::uint8_t prev = comp_[cell(frame - 1, c.fanins(n)[0])];
        g = compbits::good(prev);
        fy = compbits::faulty(prev);
        if (f.pin == 0) fy = gate_transition(fy, forced, ls);
      }
      if (f.pin == fault::kOutputPin) fy = gate_transition(fy, forced, ls);
      return compbits::pack(g, fy);
    }
    case GateType::kConst0:
    case GateType::kConst1: {
      const V3 g = t == GateType::kConst0 ? V3::k0 : V3::k1;
      return compbits::pack(
          g, f.pin == fault::kOutputPin ? gate_transition(g, forced, ls) : g);
    }
    default: {
      stats_.gate_evals += 2;  // one eval per plane, like the legacy path
      const auto fanins = c.fanins(n);
      const std::uint8_t* row = comp_.data() + cell(frame, 0);
      if (f.pin == fault::kOutputPin) {
        const std::uint8_t b = comp_fn_[n](row, fanins.data(), fanins.size());
        const V3 fy = gate_transition(compbits::faulty(b), forced, ls);
        return static_cast<std::uint8_t>((b & 0x03) |
                                         (compbits::bits(fy) << 2));
      }
      // Input-pin fault: evaluate the faulty plane with the pin forced by
      // position (one driver may feed several pins).
      const V3 g = sim::eval_gate_scalar(
          t, fanins, [&](NodeId in) { return compbits::good(row[in]); });
      const auto fp = static_cast<std::size_t>(f.pin);
      const V3 pin_v =
          gate_transition(compbits::faulty(row[fanins[fp]]), forced, ls);
      const V3 fy =
          sim::eval_gate_scalar_pos(t, fanins.size(), [&](std::size_t i) {
            return i == fp ? pin_v : compbits::faulty(row[fanins[i]]);
          });
      return compbits::pack(g, fy);
    }
  }
}

void FrameModel::simulate_flat() {
  const auto& c = circuit_;
  for (unsigned t = 0; t < frame_count_; ++t) {
    for (NodeId pi : c.primary_inputs()) {
      comp_[cell(t, pi)] = compute_comp(t, pi);
    }
    for (NodeId ff : c.flip_flops()) {
      comp_[cell(t, ff)] = compute_comp(t, ff);
    }
    for (NodeId n = 0; n < c.node_count(); ++n) {
      const GateType gt = c.type(n);
      if (gt == GateType::kConst0 || gt == GateType::kConst1) {
        comp_[cell(t, n)] = compute_comp(t, n);
      }
    }
    for (NodeId g : c.topo_order()) {
      comp_[cell(t, g)] = compute_comp(t, g);
    }
  }
}

void FrameModel::simulate() {
  if (config_.incremental) return;  // values are maintained eagerly
  if (config_.flat) {
    simulate_flat();
    return;
  }
  simulate_plane(good_, /*inject=*/false);
  if (fault_) simulate_plane(faulty_, /*inject=*/true);
}

// -- Incremental engine ------------------------------------------------------

void FrameModel::enqueue(unsigned frame, NodeId n) {
  const std::size_t cl = cell(frame, n);
  if (in_queue_[cl]) return;
  in_queue_[cl] = 1;
  const std::size_t key =
      static_cast<std::size_t>(frame) * level_stride_ + node_level_[n];
  qbuf_[static_cast<std::size_t>(frame) * node_stride_ + node_slab_[n] +
        qfill_[key]++] = n;
  ++queue_pending_;
  if (key < queue_cursor_) queue_cursor_ = key;
}

void FrameModel::schedule_fanouts(unsigned frame, NodeId n) {
  for (NodeId out : circuit_.fanouts(n)) {
    if (circuit_.type(out) == GateType::kDff) {
      // The change crosses the flip-flop into the next frame (if active);
      // inactive frames are rebuilt wholesale on activation.
      if (frame + 1 < frame_count_) enqueue(frame + 1, out);
    } else {
      enqueue(frame, out);
    }
  }
}

void FrameModel::propagate() {
  // Keys strictly increase along any propagation path (a fanout is deeper
  // in the same frame, or a level-0 flip-flop of the next frame), so one
  // ascending sweep of the buckets drains the queue and touches each
  // scheduled node exactly once.  In particular the bucket being drained
  // can never receive appends, so a plain index sweep suffices.
  while (queue_pending_ > 0) {
    while (qfill_[queue_cursor_] == 0) ++queue_cursor_;
    const std::size_t key = queue_cursor_;
    const auto t = static_cast<unsigned>(key / level_stride_);
    const auto lvl = static_cast<std::uint32_t>(key % level_stride_);
    const std::size_t base = bucket_base(t, lvl);
    const std::uint32_t fill = qfill_[key];
    stats_.events += fill;
    queue_pending_ -= fill;
    for (std::uint32_t i = 0; i < fill; ++i) {
      const NodeId n = qbuf_[base + i];
      in_queue_[cell(t, n)] = 0;
      reeval_node(t, n, /*schedule=*/true);
    }
    qfill_[key] = 0;
  }
  queue_cursor_ = qfill_.size();
}

bool FrameModel::reeval_node(unsigned frame, NodeId n, bool schedule) {
  if (config_.flat) {
    std::uint8_t& b = comp_[cell(frame, n)];
    const std::uint8_t nb = compute_comp(frame, n);
    if (nb == b) return false;
    const std::uint8_t before = b;
    // Trail per plane in good-then-faulty order so marks and undo replay
    // match the legacy layout entry for entry.
    const V3 og = compbits::good(before);
    if (compbits::good(nb) != og) {
      trail_.push_back({TrailEntry::kGood, og, frame, n});
    }
    if (fault_) {
      const V3 of = compbits::faulty(before);
      if (compbits::faulty(nb) != of) {
        trail_.push_back({TrailEntry::kFaulty, of, frame, n});
      }
    }
    b = nb;
    if (fault_) note_composite_change(frame, n, before, nb);
    // Transition faults add one cross-frame dependency the fanout graph
    // does not carry: the fault site's forcing at frame f reads the good
    // plane of the launch line at f - skew.  When that anchor moves,
    // re-derive the injection at the capture frame.  During frame
    // activation (recompute_frame) the capture frame is outside the window,
    // so the guard keeps the queue empty there; during propagate() the key
    // is strictly deeper than the bucket being drained (skew >= 1).
    if (trans_ && n == launch_line_ && compbits::good(nb) != og &&
        frame + launch_skew_ < frame_count_) {
      enqueue(frame + launch_skew_, fault_node_);
    }
    if (schedule) schedule_fanouts(frame, n);
    return true;
  }
  V3& g = good_[frame][n];
  const V3 ng = eval_node(good_, frame, n, /*inject=*/false);
  if (!fault_) {
    if (ng == g) return false;
    trail_.push_back({TrailEntry::kGood, g, frame, n});
    g = ng;
    if (schedule) schedule_fanouts(frame, n);
    return true;
  }
  V3& fy = faulty_[frame][n];
  const V3 nf = eval_node(faulty_, frame, n, /*inject=*/true);
  if (ng == g && nf == fy) return false;
  const std::uint8_t before = compbits::pack(g, fy);
  if (ng != g) {
    trail_.push_back({TrailEntry::kGood, g, frame, n});
    g = ng;
    // Launch-line hook — see the flat branch above for the invariants.
    if (trans_ && n == launch_line_ && frame + launch_skew_ < frame_count_) {
      enqueue(frame + launch_skew_, fault_node_);
    }
  }
  if (nf != fy) {
    trail_.push_back({TrailEntry::kFaulty, fy, frame, n});
    fy = nf;
  }
  note_composite_change(frame, n, before, compbits::pack(ng, nf));
  if (schedule) schedule_fanouts(frame, n);
  return true;
}

void FrameModel::recompute_frame(unsigned frame) {
  const auto& c = circuit_;
  for (NodeId pi : c.primary_inputs()) {
    reeval_node(frame, pi, /*schedule=*/false);
  }
  for (NodeId ff : c.flip_flops()) {
    reeval_node(frame, ff, /*schedule=*/false);
  }
  for (NodeId n = 0; n < c.node_count(); ++n) {
    const GateType t = c.type(n);
    if (t == GateType::kConst0 || t == GateType::kConst1) {
      reeval_node(frame, n, /*schedule=*/false);
    }
  }
  for (NodeId g : c.topo_order()) {
    reeval_node(frame, g, /*schedule=*/false);
  }
}

void FrameModel::note_composite_change(unsigned frame, NodeId n,
                                       std::uint8_t before,
                                       std::uint8_t after) {
  const int d_delta = static_cast<int>(compbits::kIsD[after & 0x0F]) -
                      static_cast<int>(compbits::kIsD[before & 0x0F]);
  if (d_delta != 0) {
    if (circuit_.is_primary_output(n)) po_d_count_[frame] += d_delta;
    if (ff_consumer_count_[n] != 0) {
      ffin_d_count_[frame] +=
          d_delta * static_cast<int>(ff_consumer_count_[n]);
    }
    // A fanin's D status feeds its consumers' frontier membership.
    for (NodeId out : circuit_.fanouts(n)) {
      if (netlist::is_combinational(circuit_.type(out))) {
        refresh_frontier(frame, out);
      }
    }
  }
  if (compbits::kAnyX[after & 0x0F] != compbits::kAnyX[before & 0x0F] &&
      netlist::is_combinational(circuit_.type(n))) {
    refresh_frontier(frame, n);
  }
}

void FrameModel::refresh_frontier(unsigned frame, NodeId gate) const {
  bool member = false;
  if (config_.flat) {
    // Byte-table membership test straight off the composite row.
    const std::uint8_t* row = comp_.data() + cell(frame, 0);
    if (compbits::kAnyX[row[gate] & 0x0F]) {
      for (NodeId in : circuit_.fanins(gate)) {
        if (compbits::kIsD[row[in] & 0x0F]) {
          member = true;
          break;
        }
      }
    }
  } else if (composite(frame, gate).any_x()) {
    for (NodeId in : circuit_.fanins(gate)) {
      if (composite(frame, in).is_d()) {
        member = true;
        break;
      }
    }
  }
  const std::size_t cl = cell(frame, gate);
  if (in_frontier_[cl] == static_cast<char>(member)) return;
  in_frontier_[cl] = static_cast<char>(member);
  if (member && !listed_[cl]) {
    listed_[cl] = 1;
    frontier_arena_[cell(frame, 0) + frontier_fill_[frame]++] = gate;
  }
  // Leaving members stay listed until the next d_frontier() compaction.
}

void FrameModel::undo_to(std::size_t mark) {
  if (!config_.incremental) return;  // trail is always empty
  assert(mark <= trail_.size());
  while (trail_.size() > mark) {
    const TrailEntry e = trail_.back();
    trail_.pop_back();
    switch (e.kind) {
      case TrailEntry::kPi:
        pi_assign_[pi_cell(e.frame, e.index)] = e.old_value;
        break;
      case TrailEntry::kState:
        state_assign_[e.index] = e.old_value;
        break;
      case TrailEntry::kGood: {
        if (config_.flat) {
          std::uint8_t& b = comp_[cell(e.frame, e.index)];
          if (fault_) {
            const std::uint8_t before = b;
            b = static_cast<std::uint8_t>((b & 0x0C) |
                                          compbits::bits(e.old_value));
            note_composite_change(e.frame, e.index, before, b);
          } else {
            b = compbits::pack_same(e.old_value);
          }
          break;
        }
        V3& g = good_[e.frame][e.index];
        if (fault_) {
          const V3 fy = faulty_[e.frame][e.index];
          const std::uint8_t before = compbits::pack(g, fy);
          g = e.old_value;
          note_composite_change(e.frame, e.index, before,
                                compbits::pack(g, fy));
        } else {
          g = e.old_value;
        }
        break;
      }
      case TrailEntry::kFaulty: {
        if (config_.flat) {
          std::uint8_t& b = comp_[cell(e.frame, e.index)];
          const std::uint8_t before = b;
          b = static_cast<std::uint8_t>((b & 0x03) |
                                        (compbits::bits(e.old_value) << 2));
          note_composite_change(e.frame, e.index, before, b);
          break;
        }
        V3& fy = faulty_[e.frame][e.index];
        const std::uint8_t before = compbits::pack(good_[e.frame][e.index], fy);
        fy = e.old_value;
        note_composite_change(e.frame, e.index, before,
                              compbits::pack(good_[e.frame][e.index], fy));
        break;
      }
    }
  }
}

// -- Queries -----------------------------------------------------------------

bool FrameModel::po_has_d() const {
  if (!fault_) return false;
  if (config_.incremental) {
    for (unsigned t = 0; t < frame_count_; ++t) {
      if (po_d_count_[t] > 0) return true;
    }
    return false;
  }
  for (unsigned t = 0; t < frame_count_; ++t) {
    for (NodeId po : circuit_.primary_outputs()) {
      if (composite(t, po).is_d()) return true;
    }
  }
  return false;
}

bool FrameModel::d_reaches_ff_input(unsigned frame) const {
  if (!fault_) return false;
  if (config_.incremental) return ffin_d_count_[frame] > 0;
  for (NodeId ff : circuit_.flip_flops()) {
    if (composite(frame, circuit_.fanins(ff)[0]).is_d()) return true;
  }
  return false;
}

const std::vector<FrameModel::FrontierGate>& FrameModel::d_frontier() const {
  frontier_out_.clear();
  if (!fault_) return frontier_out_;
  if (config_.incremental) {
    const std::size_t nc = circuit_.node_count();
    for (unsigned t = 0; t < frame_count_; ++t) {
      NodeId* members = frontier_arena_.data() + static_cast<std::size_t>(t) * nc;
      std::uint32_t kept = 0;
      for (std::uint32_t i = 0; i < frontier_fill_[t]; ++i) {
        const NodeId g = members[i];
        if (in_frontier_[cell(t, g)]) {
          members[kept++] = g;
        } else {
          listed_[cell(t, g)] = 0;
        }
      }
      frontier_fill_[t] = kept;
      // Topological order reproduces the oblivious scan order exactly, so
      // objective selection is bit-identical across the two engines.
      std::sort(members, members + kept, [&](NodeId a, NodeId b) {
        return topo_pos_[a] < topo_pos_[b];
      });
      for (std::uint32_t i = 0; i < kept; ++i) {
        frontier_out_.push_back({t, members[i]});
      }
    }
    return frontier_out_;
  }
  for (unsigned t = 0; t < frame_count_; ++t) {
    for (NodeId g : circuit_.topo_order()) {
      if (!composite(t, g).any_x()) continue;
      for (NodeId in : circuit_.fanins(g)) {
        if (composite(t, in).is_d()) {
          frontier_out_.push_back({t, g});
          break;
        }
      }
    }
  }
  return frontier_out_;
}

sim::Sequence FrameModel::extract_vectors() const {
  const std::size_t npi = circuit_.primary_inputs().size();
  sim::Sequence seq(frame_count_);
  for (unsigned t = 0; t < frame_count_; ++t) {
    seq[t].assign(pi_assign_.begin() + static_cast<std::ptrdiff_t>(t * npi),
                  pi_assign_.begin() + static_cast<std::ptrdiff_t>((t + 1) * npi));
  }
  return seq;
}

sim::State3 FrameModel::extract_state() const { return state_assign_; }

}  // namespace gatpg::atpg
