#include "atpg/frame_model.h"

#include <cassert>

namespace gatpg::atpg {

using netlist::GateType;
using netlist::NodeId;
using sim::V3;

FrameModel::FrameModel(const netlist::Circuit& c,
                       std::optional<fault::Fault> fault, unsigned max_frames)
    : circuit_(c), fault_(fault), max_frames_(max_frames) {
  assert(max_frames_ >= 1);
  pi_assign_.assign(max_frames_,
                    std::vector<V3>(c.primary_inputs().size(), V3::kX));
  state_assign_.assign(c.flip_flops().size(), V3::kX);
  good_.assign(max_frames_, std::vector<V3>(c.node_count(), V3::kX));
  if (fault_) {
    faulty_.assign(max_frames_, std::vector<V3>(c.node_count(), V3::kX));
  }
  simulate();
}

bool FrameModel::extend() {
  if (frame_count_ >= max_frames_) return false;
  ++frame_count_;
  return true;
}

void FrameModel::set_frame_count(unsigned n) {
  assert(n >= 1 && n <= max_frames_);
  frame_count_ = n;
}

void FrameModel::assign_pi(unsigned frame, std::size_t pi_index, V3 v) {
  pi_assign_[frame][pi_index] = v;
}

void FrameModel::clear_pi(unsigned frame, std::size_t pi_index) {
  pi_assign_[frame][pi_index] = V3::kX;
}

V3 FrameModel::pi_value(unsigned frame, std::size_t pi_index) const {
  return pi_assign_[frame][pi_index];
}

void FrameModel::assign_state(std::size_t ff_index, V3 v) {
  state_assign_[ff_index] = v;
}

void FrameModel::clear_state(std::size_t ff_index) {
  state_assign_[ff_index] = V3::kX;
}

V3 FrameModel::state_value(std::size_t ff_index) const {
  return state_assign_[ff_index];
}

void FrameModel::simulate_plane(std::vector<std::vector<V3>>& plane,
                                bool inject) const {
  const auto& c = circuit_;
  const auto pis = c.primary_inputs();
  const auto ffs = c.flip_flops();
  const fault::Fault* f = inject && fault_ ? &*fault_ : nullptr;

  for (unsigned t = 0; t < frame_count_; ++t) {
    auto& vals = plane[t];
    // Sources.
    for (std::size_t i = 0; i < pis.size(); ++i) {
      vals[pis[i]] = pi_assign_[t][i];
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      V3 v;
      if (t == 0) {
        v = state_assign_[i];
      } else {
        // Next-state: the D fanin of the flip-flop in the previous frame,
        // with an injected D-pin fault applied if present.
        v = plane[t - 1][c.fanins(ffs[i])[0]];
        if (f && f->node == ffs[i] && f->pin == 0) {
          v = f->stuck_at ? V3::k1 : V3::k0;
        }
      }
      if (f && f->node == ffs[i] && f->pin == fault::kOutputPin) {
        v = f->stuck_at ? V3::k1 : V3::k0;
      }
      vals[ffs[i]] = v;
    }
    for (NodeId n = 0; n < c.node_count(); ++n) {
      if (c.type(n) == GateType::kConst0) vals[n] = V3::k0;
      if (c.type(n) == GateType::kConst1) vals[n] = V3::k1;
    }
    if (f && f->pin == fault::kOutputPin &&
        c.type(f->node) == GateType::kInput) {
      vals[f->node] = f->stuck_at ? V3::k1 : V3::k0;
    }
    // Combinational gates in topological order.
    for (NodeId g : c.topo_order()) {
      V3 v;
      if (f && f->node == g && f->pin >= 0) {
        // Evaluate with the faulted pin forced.  The pin is identified by
        // position, not node id (one driver may feed several pins).
        const auto fanins = c.fanins(g);
        const auto fp = static_cast<std::size_t>(f->pin);
        std::vector<V3> ins(fanins.size());
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          ins[i] = vals[fanins[i]];
        }
        ins[fp] = f->stuck_at ? V3::k1 : V3::k0;
        std::vector<NodeId> idx(fanins.size());
        for (std::size_t i = 0; i < idx.size(); ++i) {
          idx[i] = static_cast<NodeId>(i);
        }
        v = sim::eval_gate_scalar(c.type(g), idx,
                                  [&](NodeId i) { return ins[i]; });
      } else {
        v = sim::eval_gate_scalar(c.type(g), c.fanins(g),
                                  [&](NodeId in) { return vals[in]; });
      }
      if (f && f->node == g && f->pin == fault::kOutputPin) {
        v = f->stuck_at ? V3::k1 : V3::k0;
      }
      vals[g] = v;
    }
  }
}

void FrameModel::simulate() {
  simulate_plane(good_, /*inject=*/false);
  if (fault_) simulate_plane(faulty_, /*inject=*/true);
}

bool FrameModel::po_has_d() const {
  if (!fault_) return false;
  for (unsigned t = 0; t < frame_count_; ++t) {
    for (NodeId po : circuit_.primary_outputs()) {
      if (composite(t, po).is_d()) return true;
    }
  }
  return false;
}

bool FrameModel::d_reaches_ff_input(unsigned frame) const {
  if (!fault_) return false;
  for (NodeId ff : circuit_.flip_flops()) {
    if (composite(frame, circuit_.fanins(ff)[0]).is_d()) return true;
  }
  return false;
}

std::vector<FrameModel::FrontierGate> FrameModel::d_frontier() const {
  std::vector<FrontierGate> frontier;
  if (!fault_) return frontier;
  for (unsigned t = 0; t < frame_count_; ++t) {
    for (NodeId g : circuit_.topo_order()) {
      if (!composite(t, g).any_x()) continue;
      for (NodeId in : circuit_.fanins(g)) {
        if (composite(t, in).is_d()) {
          frontier.push_back({t, g});
          break;
        }
      }
    }
  }
  return frontier;
}

sim::Sequence FrameModel::extract_vectors() const {
  sim::Sequence seq(frame_count_);
  for (unsigned t = 0; t < frame_count_; ++t) {
    seq[t] = pi_assign_[t];
  }
  return seq;
}

sim::State3 FrameModel::extract_state() const { return state_assign_; }

}  // namespace gatpg::atpg
