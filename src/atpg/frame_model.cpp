#include "atpg/frame_model.h"

#include <algorithm>
#include <cassert>

namespace gatpg::atpg {

using netlist::GateType;
using netlist::NodeId;
using sim::V3;

FrameModel::FrameModel(const netlist::Circuit& c,
                       std::optional<fault::Fault> fault, unsigned max_frames,
                       FrameModelConfig config)
    : circuit_(c), fault_(fault), max_frames_(max_frames), config_(config) {
  assert(max_frames_ >= 1);
  pi_assign_.assign(max_frames_,
                    std::vector<V3>(c.primary_inputs().size(), V3::kX));
  state_assign_.assign(c.flip_flops().size(), V3::kX);
  good_.assign(max_frames_, std::vector<V3>(c.node_count(), V3::kX));
  if (fault_) {
    faulty_.assign(max_frames_, std::vector<V3>(c.node_count(), V3::kX));
  }
  if (config_.incremental) {
    init_incremental();
    recompute_frame(0);
    // Mark 0 is the post-construction state: the trail starts empty, the
    // summaries stay (they describe the values just computed).
    trail_.clear();
  } else {
    simulate();
  }
}

void FrameModel::init_incremental() {
  const auto& c = circuit_;
  level_stride_ = static_cast<std::size_t>(c.max_level()) + 1;
  buckets_.assign(static_cast<std::size_t>(max_frames_) * level_stride_, {});
  queue_cursor_ = buckets_.size();
  const std::size_t cells =
      static_cast<std::size_t>(max_frames_) * c.node_count();
  in_queue_.assign(cells, 0);
  if (fault_) {
    po_d_count_.assign(max_frames_, 0);
    ffin_d_count_.assign(max_frames_, 0);
    ff_consumer_count_.assign(c.node_count(), 0);
    for (NodeId ff : c.flip_flops()) ++ff_consumer_count_[c.fanins(ff)[0]];
    topo_pos_.assign(c.node_count(), 0);
    const auto topo = c.topo_order();
    for (std::size_t i = 0; i < topo.size(); ++i) {
      topo_pos_[topo[i]] = static_cast<std::uint32_t>(i);
    }
    in_frontier_.assign(cells, 0);
    listed_.assign(cells, 0);
    frontier_members_.assign(max_frames_, {});
  }
}

bool FrameModel::extend() {
  if (frame_count_ >= max_frames_) return false;
  ++frame_count_;
  if (config_.incremental) recompute_frame(frame_count_ - 1);
  return true;
}

void FrameModel::set_frame_count(unsigned n) {
  assert(n >= 1 && n <= max_frames_);
  if (!config_.incremental || n <= frame_count_) {
    frame_count_ = n;
    return;
  }
  // Growth: newly active frames hold stale (or never-computed) values and
  // must be rebuilt from the current assignments, oldest first so each
  // frame's flip-flops read a finished predecessor frame.
  while (frame_count_ < n) {
    ++frame_count_;
    recompute_frame(frame_count_ - 1);
  }
}

void FrameModel::assign_pi(unsigned frame, std::size_t pi_index, V3 v) {
  if (!config_.incremental) {
    pi_assign_[frame][pi_index] = v;
    return;
  }
  V3& slot = pi_assign_[frame][pi_index];
  if (slot == v) return;
  trail_.push_back({TrailEntry::kPi, slot, frame,
                    static_cast<std::uint32_t>(pi_index)});
  slot = v;
  if (frame < frame_count_) {
    // Inactive frames pick the assignment up when they are activated
    // (recompute_frame reads pi_assign_ directly).
    enqueue(frame, circuit_.primary_inputs()[pi_index]);
    propagate();
  }
}

void FrameModel::clear_pi(unsigned frame, std::size_t pi_index) {
  assign_pi(frame, pi_index, V3::kX);
}

V3 FrameModel::pi_value(unsigned frame, std::size_t pi_index) const {
  return pi_assign_[frame][pi_index];
}

void FrameModel::assign_state(std::size_t ff_index, V3 v) {
  if (!config_.incremental) {
    state_assign_[ff_index] = v;
    return;
  }
  V3& slot = state_assign_[ff_index];
  if (slot == v) return;
  trail_.push_back(
      {TrailEntry::kState, slot, 0, static_cast<std::uint32_t>(ff_index)});
  slot = v;
  enqueue(0, circuit_.flip_flops()[ff_index]);  // frame 0 is always active
  propagate();
}

void FrameModel::clear_state(std::size_t ff_index) {
  assign_state(ff_index, V3::kX);
}

V3 FrameModel::state_value(std::size_t ff_index) const {
  return state_assign_[ff_index];
}

V3 FrameModel::eval_node(const std::vector<std::vector<V3>>& plane,
                         unsigned frame, NodeId n, bool inject) {
  const auto& c = circuit_;
  const fault::Fault* f = inject && fault_ ? &*fault_ : nullptr;
  const GateType t = c.type(n);
  switch (t) {
    case GateType::kInput: {
      V3 v = pi_assign_[frame][static_cast<std::size_t>(c.pi_index(n))];
      if (f && f->node == n && f->pin == fault::kOutputPin) {
        v = f->stuck_at ? V3::k1 : V3::k0;
      }
      return v;
    }
    case GateType::kDff: {
      V3 v;
      if (frame == 0) {
        v = state_assign_[static_cast<std::size_t>(c.ff_index(n))];
      } else {
        // Next-state: the D fanin of the flip-flop in the previous frame,
        // with an injected D-pin fault applied if present.
        v = plane[frame - 1][c.fanins(n)[0]];
        if (f && f->node == n && f->pin == 0) {
          v = f->stuck_at ? V3::k1 : V3::k0;
        }
      }
      if (f && f->node == n && f->pin == fault::kOutputPin) {
        v = f->stuck_at ? V3::k1 : V3::k0;
      }
      return v;
    }
    case GateType::kConst0:
      return V3::k0;
    case GateType::kConst1:
      return V3::k1;
    default: {
      ++stats_.gate_evals;
      const auto& vals = plane[frame];
      V3 v;
      if (f && f->node == n && f->pin >= 0) {
        // Evaluate with the faulted pin forced.  The pin is identified by
        // position, not node id (one driver may feed several pins).
        const auto fanins = c.fanins(n);
        const auto fp = static_cast<std::size_t>(f->pin);
        scratch_ins_.resize(fanins.size());
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          scratch_ins_[i] = vals[fanins[i]];
        }
        scratch_ins_[fp] = f->stuck_at ? V3::k1 : V3::k0;
        scratch_idx_.resize(fanins.size());
        for (std::size_t i = 0; i < scratch_idx_.size(); ++i) {
          scratch_idx_[i] = static_cast<NodeId>(i);
        }
        v = sim::eval_gate_scalar(t, scratch_idx_,
                                  [&](NodeId i) { return scratch_ins_[i]; });
      } else {
        v = sim::eval_gate_scalar(t, c.fanins(n),
                                  [&](NodeId in) { return vals[in]; });
      }
      if (f && f->node == n && f->pin == fault::kOutputPin) {
        v = f->stuck_at ? V3::k1 : V3::k0;
      }
      return v;
    }
  }
}

void FrameModel::simulate_plane(std::vector<std::vector<V3>>& plane,
                                bool inject) {
  const auto& c = circuit_;
  for (unsigned t = 0; t < frame_count_; ++t) {
    auto& vals = plane[t];
    for (NodeId pi : c.primary_inputs()) {
      vals[pi] = eval_node(plane, t, pi, inject);
    }
    for (NodeId ff : c.flip_flops()) {
      vals[ff] = eval_node(plane, t, ff, inject);
    }
    for (NodeId n = 0; n < c.node_count(); ++n) {
      if (c.type(n) == GateType::kConst0) vals[n] = V3::k0;
      if (c.type(n) == GateType::kConst1) vals[n] = V3::k1;
    }
    for (NodeId g : c.topo_order()) {
      vals[g] = eval_node(plane, t, g, inject);
    }
  }
}

void FrameModel::simulate() {
  if (config_.incremental) return;  // values are maintained eagerly
  simulate_plane(good_, /*inject=*/false);
  if (fault_) simulate_plane(faulty_, /*inject=*/true);
}

// -- Incremental engine ------------------------------------------------------

void FrameModel::enqueue(unsigned frame, NodeId n) {
  const std::size_t cl = cell(frame, n);
  if (in_queue_[cl]) return;
  in_queue_[cl] = 1;
  const std::size_t key =
      static_cast<std::size_t>(frame) * level_stride_ + circuit_.level(n);
  buckets_[key].push_back(n);
  ++queue_pending_;
  if (key < queue_cursor_) queue_cursor_ = key;
}

void FrameModel::schedule_fanouts(unsigned frame, NodeId n) {
  for (NodeId out : circuit_.fanouts(n)) {
    if (circuit_.type(out) == GateType::kDff) {
      // The change crosses the flip-flop into the next frame (if active);
      // inactive frames are rebuilt wholesale on activation.
      if (frame + 1 < frame_count_) enqueue(frame + 1, out);
    } else {
      enqueue(frame, out);
    }
  }
}

void FrameModel::propagate() {
  // Keys strictly increase along any propagation path (a fanout is deeper
  // in the same frame, or a level-0 flip-flop of the next frame), so one
  // ascending sweep of the buckets drains the queue and touches each
  // scheduled node exactly once.
  while (queue_pending_ > 0) {
    while (buckets_[queue_cursor_].empty()) ++queue_cursor_;
    auto& bucket = buckets_[queue_cursor_];
    const unsigned t = static_cast<unsigned>(queue_cursor_ / level_stride_);
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId n = bucket[i];
      in_queue_[cell(t, n)] = 0;
      --queue_pending_;
      ++stats_.events;
      reeval_node(t, n, /*schedule=*/true);
    }
    bucket.clear();
  }
  queue_cursor_ = buckets_.size();
}

bool FrameModel::reeval_node(unsigned frame, NodeId n, bool schedule) {
  V3& g = good_[frame][n];
  const V3 ng = eval_node(good_, frame, n, /*inject=*/false);
  if (!fault_) {
    if (ng == g) return false;
    trail_.push_back({TrailEntry::kGood, g, frame, n});
    g = ng;
    if (schedule) schedule_fanouts(frame, n);
    return true;
  }
  V3& fy = faulty_[frame][n];
  const V3 nf = eval_node(faulty_, frame, n, /*inject=*/true);
  if (ng == g && nf == fy) return false;
  const Composite before{g, fy};
  if (ng != g) {
    trail_.push_back({TrailEntry::kGood, g, frame, n});
    g = ng;
  }
  if (nf != fy) {
    trail_.push_back({TrailEntry::kFaulty, fy, frame, n});
    fy = nf;
  }
  note_composite_change(frame, n, before, {ng, nf});
  if (schedule) schedule_fanouts(frame, n);
  return true;
}

void FrameModel::recompute_frame(unsigned frame) {
  const auto& c = circuit_;
  for (NodeId pi : c.primary_inputs()) {
    reeval_node(frame, pi, /*schedule=*/false);
  }
  for (NodeId ff : c.flip_flops()) {
    reeval_node(frame, ff, /*schedule=*/false);
  }
  for (NodeId n = 0; n < c.node_count(); ++n) {
    const GateType t = c.type(n);
    if (t == GateType::kConst0 || t == GateType::kConst1) {
      reeval_node(frame, n, /*schedule=*/false);
    }
  }
  for (NodeId g : c.topo_order()) {
    reeval_node(frame, g, /*schedule=*/false);
  }
}

void FrameModel::note_composite_change(unsigned frame, NodeId n,
                                       const Composite& before,
                                       const Composite& after) {
  const int d_delta =
      static_cast<int>(after.is_d()) - static_cast<int>(before.is_d());
  if (d_delta != 0) {
    if (circuit_.is_primary_output(n)) po_d_count_[frame] += d_delta;
    if (ff_consumer_count_[n] != 0) {
      ffin_d_count_[frame] +=
          d_delta * static_cast<int>(ff_consumer_count_[n]);
    }
    // A fanin's D status feeds its consumers' frontier membership.
    for (NodeId out : circuit_.fanouts(n)) {
      if (netlist::is_combinational(circuit_.type(out))) {
        refresh_frontier(frame, out);
      }
    }
  }
  if (after.any_x() != before.any_x() &&
      netlist::is_combinational(circuit_.type(n))) {
    refresh_frontier(frame, n);
  }
}

void FrameModel::refresh_frontier(unsigned frame, NodeId gate) const {
  bool member = false;
  if (composite(frame, gate).any_x()) {
    for (NodeId in : circuit_.fanins(gate)) {
      if (composite(frame, in).is_d()) {
        member = true;
        break;
      }
    }
  }
  const std::size_t cl = cell(frame, gate);
  if (in_frontier_[cl] == static_cast<char>(member)) return;
  in_frontier_[cl] = static_cast<char>(member);
  if (member && !listed_[cl]) {
    listed_[cl] = 1;
    frontier_members_[frame].push_back(gate);
  }
  // Leaving members stay listed until the next d_frontier() compaction.
}

void FrameModel::undo_to(std::size_t mark) {
  if (!config_.incremental) return;  // trail is always empty
  assert(mark <= trail_.size());
  while (trail_.size() > mark) {
    const TrailEntry e = trail_.back();
    trail_.pop_back();
    switch (e.kind) {
      case TrailEntry::kPi:
        pi_assign_[e.frame][e.index] = e.old_value;
        break;
      case TrailEntry::kState:
        state_assign_[e.index] = e.old_value;
        break;
      case TrailEntry::kGood: {
        V3& g = good_[e.frame][e.index];
        if (fault_) {
          const V3 fy = faulty_[e.frame][e.index];
          const Composite before{g, fy};
          g = e.old_value;
          note_composite_change(e.frame, e.index, before, {g, fy});
        } else {
          g = e.old_value;
        }
        break;
      }
      case TrailEntry::kFaulty: {
        V3& fy = faulty_[e.frame][e.index];
        const Composite before{good_[e.frame][e.index], fy};
        fy = e.old_value;
        note_composite_change(e.frame, e.index, before,
                              {good_[e.frame][e.index], fy});
        break;
      }
    }
  }
}

// -- Queries -----------------------------------------------------------------

bool FrameModel::po_has_d() const {
  if (!fault_) return false;
  if (config_.incremental) {
    for (unsigned t = 0; t < frame_count_; ++t) {
      if (po_d_count_[t] > 0) return true;
    }
    return false;
  }
  for (unsigned t = 0; t < frame_count_; ++t) {
    for (NodeId po : circuit_.primary_outputs()) {
      if (composite(t, po).is_d()) return true;
    }
  }
  return false;
}

bool FrameModel::d_reaches_ff_input(unsigned frame) const {
  if (!fault_) return false;
  if (config_.incremental) return ffin_d_count_[frame] > 0;
  for (NodeId ff : circuit_.flip_flops()) {
    if (composite(frame, circuit_.fanins(ff)[0]).is_d()) return true;
  }
  return false;
}

std::vector<FrameModel::FrontierGate> FrameModel::d_frontier() const {
  std::vector<FrontierGate> frontier;
  if (!fault_) return frontier;
  if (config_.incremental) {
    for (unsigned t = 0; t < frame_count_; ++t) {
      auto& members = frontier_members_[t];
      std::size_t kept = 0;
      for (NodeId g : members) {
        if (in_frontier_[cell(t, g)]) {
          members[kept++] = g;
        } else {
          listed_[cell(t, g)] = 0;
        }
      }
      members.resize(kept);
      // Topological order reproduces the oblivious scan order exactly, so
      // objective selection is bit-identical across the two engines.
      std::sort(members.begin(), members.end(), [&](NodeId a, NodeId b) {
        return topo_pos_[a] < topo_pos_[b];
      });
      for (NodeId g : members) frontier.push_back({t, g});
    }
    return frontier;
  }
  for (unsigned t = 0; t < frame_count_; ++t) {
    for (NodeId g : circuit_.topo_order()) {
      if (!composite(t, g).any_x()) continue;
      for (NodeId in : circuit_.fanins(g)) {
        if (composite(t, in).is_d()) {
          frontier.push_back({t, g});
          break;
        }
      }
    }
  }
  return frontier;
}

sim::Sequence FrameModel::extract_vectors() const {
  sim::Sequence seq(frame_count_);
  for (unsigned t = 0; t < frame_count_; ++t) {
    seq[t] = pi_assign_[t];
  }
  return seq;
}

sim::State3 FrameModel::extract_state() const { return state_assign_; }

}  // namespace gatpg::atpg
