#include "atpg/justify.h"

#include <algorithm>

namespace gatpg::atpg {

using sim::State3;
using sim::V3;

FrameGoalSearch::FrameGoalSearch(const netlist::Circuit& c,
                                 std::vector<Objective> goals,
                                 FrameModelConfig config, FrameModelPool* pool)
    : pool_(pool),
      model_h_(pool ? pool->acquire(std::nullopt, 1, config)
                    : FrameModelPool::standalone(c, std::nullopt, 1, config)),
      model_(*model_h_),
      stack_(model_),
      goals_(std::move(goals)) {}

bool FrameGoalSearch::conflict() const {
  return std::any_of(goals_.begin(), goals_.end(), [&](const Objective& g) {
    const V3 v = model_.good(0, g.node);
    return v != V3::kX && v != g.value;
  });
}

bool FrameGoalSearch::satisfied() const {
  return std::all_of(goals_.begin(), goals_.end(), [&](const Objective& g) {
    return model_.good(0, g.node) == g.value;
  });
}

bool FrameGoalSearch::pick_objective(Objective& obj) const {
  for (const Objective& g : goals_) {
    if (model_.good(0, g.node) == V3::kX) {
      obj = g;
      return true;
    }
  }
  return false;
}

void FrameGoalSearch::flush_stats(SearchStats& stats) {
  std::uint64_t gate_evals = model_.stats().gate_evals + retired_gate_evals_;
  std::uint64_t events = model_.stats().events + retired_events_;
  if (scratch_) {
    gate_evals += scratch_->stats().gate_evals;
    events += scratch_->stats().events;
  }
  stats.gate_evals += static_cast<long>(gate_evals - synced_gate_evals_);
  stats.events += static_cast<long>(events - synced_events_);
  synced_gate_evals_ = gate_evals;
  synced_events_ = events;
}

FrameGoalSearch::Step FrameGoalSearch::next(const util::Deadline& deadline,
                                            long max_backtracks,
                                            SearchStats& stats) {
  const Step step = advance(deadline, max_backtracks, stats);
  flush_stats(stats);
  return step;
}

FrameGoalSearch::Step FrameGoalSearch::advance(const util::Deadline& deadline,
                                               long max_backtracks,
                                               SearchStats& stats) {
  if (started_) {
    if (!stack_.backtrack(stats)) return Step::kExhausted;
  } else {
    started_ = true;
    model_.simulate();
  }
  for (;;) {
    if (deadline.expired() || stats.backtracks > max_backtracks) {
      stats.clipped = true;
      return Step::kAborted;
    }
    if (conflict()) {
      if (!stack_.backtrack(stats)) return Step::kExhausted;
      continue;
    }
    if (satisfied()) return Step::kSolution;
    Objective obj;
    if (!pick_objective(obj)) {
      // All goals defined yet neither satisfied nor conflicting cannot
      // happen; guard anyway.
      if (!stack_.backtrack(stats)) return Step::kExhausted;
      continue;
    }
    const auto assignment = backtrace(model_, obj);
    if (!assignment) {
      if (!stack_.backtrack(stats)) return Step::kExhausted;
      continue;
    }
    ++stats.decisions;
    stack_.push(*assignment);
  }
}

sim::State3 FrameGoalSearch::minimized_state() const {
  const auto& c = model_.circuit();
  // Rebuild the solution on a scratch model, then greedily clear state
  // assignments whose removal keeps every goal satisfied.
  if (!model_.incremental()) {
    const FrameModelConfig sc_config{/*incremental=*/false, model_.flat()};
    if (scratch_) {
      // Reuse the scratch model across minimization calls: fold its effort
      // into the retired tally (reset() is about to zero it) and reset
      // instead of constructing a fresh model per call.
      retired_gate_evals_ += scratch_->stats().gate_evals;
      retired_events_ += scratch_->stats().events;
      scratch_->reset(std::nullopt, 1, sc_config);
    } else {
      scratch_ = pool_ ? pool_->acquire(std::nullopt, 1, sc_config)
                       : FrameModelPool::standalone(c, std::nullopt, 1,
                                                    sc_config);
    }
    FrameModel& scratch = *scratch_;
    const auto pis = c.primary_inputs();
    for (std::size_t i = 0; i < pis.size(); ++i) {
      scratch.assign_pi(0, i, model_.pi_value(0, i));
    }
    const std::size_t nff = c.flip_flops().size();
    for (std::size_t i = 0; i < nff; ++i) {
      scratch.assign_state(i, model_.state_value(i));
    }
    scratch.simulate();
    auto holds = [&] {
      return std::all_of(goals_.begin(), goals_.end(),
                         [&](const Objective& g) {
                           return scratch.good(0, g.node) == g.value;
                         });
    };
    for (std::size_t i = 0; i < nff; ++i) {
      const V3 saved = scratch.state_value(i);
      if (saved == V3::kX) continue;
      scratch.clear_state(i);
      scratch.simulate();
      if (!holds()) {
        scratch.assign_state(i, saved);
        scratch.simulate();
      }
    }
    // The live scratch's stats are folded in by flush_stats; the retired
    // tally only collects effort about to be wiped by reset().
    return scratch.extract_state();
  }
  // Incremental: reuse one scratch model, reset through the trail; each
  // greedy probe is a trailed clear_state undone when a goal breaks.
  if (!scratch_) {
    const FrameModelConfig sc_config{/*incremental=*/true, model_.flat()};
    scratch_ = pool_ ? pool_->acquire(std::nullopt, 1, sc_config)
                     : FrameModelPool::standalone(c, std::nullopt, 1,
                                                  sc_config);
  }
  FrameModel& sc = *scratch_;
  sc.undo_to(0);  // single-frame model: construction state is consistent
  const auto pis = c.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const V3 v = model_.pi_value(0, i);
    if (v != V3::kX) sc.assign_pi(0, i, v);
  }
  const std::size_t nff = c.flip_flops().size();
  for (std::size_t i = 0; i < nff; ++i) {
    const V3 v = model_.state_value(i);
    if (v != V3::kX) sc.assign_state(i, v);
  }
  auto holds = [&] {
    return std::all_of(goals_.begin(), goals_.end(), [&](const Objective& g) {
      return sc.good(0, g.node) == g.value;
    });
  };
  for (std::size_t i = 0; i < nff; ++i) {
    if (sc.state_value(i) == V3::kX) continue;
    const std::size_t mark = sc.trail_mark();
    sc.clear_state(i);
    if (!holds()) sc.undo_to(mark);
  }
  return sc.extract_state();
}

DeterministicJustifier::DeterministicJustifier(const netlist::Circuit& c,
                                               const SearchLimits& limits,
                                               state::StateStore* store,
                                               FrameModelPool* pool)
    : c_(c),
      limits_(limits),
      store_(store),
      own_pool_(pool ? nullptr : std::make_unique<FrameModelPool>(c)),
      pool_(pool ? pool : own_pool_.get()) {}

std::string DeterministicJustifier::key_of(const State3& s) {
  std::string k(s.size(), 'X');
  for (std::size_t i = 0; i < s.size(); ++i) k[i] = sim::v3_char(s[i]);
  return k;
}

DeterministicJustifier::Outcome DeterministicJustifier::justify(
    const State3& target, const util::Deadline& deadline) {
  stats_ = SearchStats{};
  std::vector<std::string> path;
  const Outcome out =
      justify_rec(target, limits_.max_justify_depth, path, deadline);
  if (store_ && out.status == Status::kUnjustifiable) {
    // Top-level exhaustion without clipping: a global untestability-grade
    // proof, safe to reuse against any later query the cube subsumes.
    store_->record_unjustifiable(target);
  }
  return out;
}

DeterministicJustifier::Outcome DeterministicJustifier::justify_rec(
    const State3& target, unsigned depth, std::vector<std::string>& path,
    const util::Deadline& deadline) {
  const bool trivial = std::all_of(target.begin(), target.end(),
                                   [](V3 v) { return v == V3::kX; });
  if (trivial) return {Status::kJustified, {}};

  const std::string key = key_of(target);
  if (std::find(path.begin(), path.end(), key) != path.end()) {
    // Requirement cycle: a minimal justification never repeats a
    // requirement, so this branch is safely abandoned.
    return {Status::kUnjustifiable, {}};
  }
  if (depth == 0) {
    stats_.clipped = true;
    return {Status::kAborted, {}};
  }
  if (store_ && store_->known_unjustifiable(target)) {
    // Stored cubes are globally unreachable, so the rejection is sound at
    // any recursion depth (it only strengthens the path-relative argument).
    return {Status::kUnjustifiable, {}};
  }

  std::vector<Objective> goals;
  const auto ffs = c_.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (target[i] != V3::kX) {
      goals.push_back({0, c_.fanins(ffs[i])[0], target[i]});
    }
  }

  FrameGoalSearch search(
      c_, std::move(goals),
      FrameModelConfig{limits_.incremental_model, limits_.flat_model}, pool_);
  bool any_aborted = false;
  for (;;) {
    const auto step = search.next(deadline, limits_.max_backtracks, stats_);
    if (step == FrameGoalSearch::Step::kAborted) {
      return {Status::kAborted, {}};
    }
    if (step == FrameGoalSearch::Step::kExhausted) {
      return {any_aborted ? Status::kAborted : Status::kUnjustifiable, {}};
    }
    const State3 previous = search.minimized_state();
    path.push_back(key);
    Outcome sub = justify_rec(previous, depth - 1, path, deadline);
    path.pop_back();
    if (sub.status == Status::kJustified) {
      sub.sequence.push_back(search.model().extract_vectors()[0]);
      return sub;
    }
    if (sub.status == Status::kAborted) any_aborted = true;
  }
}

}  // namespace gatpg::atpg
