// Deterministic state justification by reverse time processing (the
// HITEC-style back end, used by the baseline in every pass and by GA-HITEC
// from pass 3 on).
//
// To justify state S: search one combinational frame for PI/previous-state
// assignments that drive every required flip-flop D input to its target
// value; then recursively justify the previous-state requirement S'.  The
// recursion bottoms out when S' is all-X — the sequence then works from the
// power-up unknown state (HITEC "always backtraces to a time frame in which
// all flip-flops are set to unknown values", unlike the GA, which continues
// from the current good-machine state).
//
// Requirement chains that revisit a requirement are pruned: a minimal
// justification never repeats a requirement (the repeated middle could be
// cut), so pruning preserves completeness and an exhaustive failure — with
// no time/backtrack/depth clipping — proves S unjustifiable.  That proof is
// what lets the hybrid declare faults untestable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "atpg/limits.h"
#include "atpg/podem.h"
#include "state/state_store.h"
#include "util/stopwatch.h"

namespace gatpg::atpg {

/// Enumerates assignments of one combinational frame satisfying a set of
/// node-value goals.  Used per reverse time frame by the justifier; exposed
/// for unit tests.
class FrameGoalSearch {
 public:
  enum class Step { kSolution, kExhausted, kAborted };

  /// `pool` (optional) recycles the frame model and the minimization
  /// scratch across searches — the justifier builds one FrameGoalSearch per
  /// recursion level per fault, so pooling turns that into a reset.
  FrameGoalSearch(const netlist::Circuit& c, std::vector<Objective> goals,
                  FrameModelConfig config = {},
                  FrameModelPool* pool = nullptr);

  /// Advances to the next satisfying assignment.  `stats` accumulates
  /// decisions/backtracks (and implication gate-eval/event counts) across
  /// calls; `max_backtracks` is the shared per-fault budget.
  Step next(const util::Deadline& deadline, long max_backtracks,
            SearchStats& stats);

  const FrameModel& model() const { return model_; }

  /// The current solution's previous-state requirement with every
  /// unnecessary pseudo-input assignment dropped back to X.  PODEM decisions
  /// binarize state variables even when the goals hold without them; by
  /// three-valued monotonicity removing such assignments preserves the
  /// solution, and the weaker requirement is strictly easier (and sometimes
  /// uniquely possible) to justify.  Without this minimization the
  /// justifier is incomplete: it can reject states whose only witnesses
  /// leave flip-flops unknown.
  sim::State3 minimized_state() const;

 private:
  bool conflict() const;
  bool satisfied() const;
  bool pick_objective(Objective& obj) const;
  Step advance(const util::Deadline& deadline, long max_backtracks,
               SearchStats& stats);
  /// Adds the model-side effort accrued since the last flush to `stats`.
  void flush_stats(SearchStats& stats);

  FrameModelPool* pool_ = nullptr;  // may be null (standalone models)
  FrameModelHandle model_h_;
  FrameModel& model_;
  DecisionStack stack_;
  std::vector<Objective> goals_;
  /// Scratch model reused by minimized_state (both modes; pooled).
  mutable FrameModelHandle scratch_;
  /// Effort of already-destroyed oblivious minimized_state scratch models,
  /// folded into flush_stats so both modes account minimization identically.
  mutable std::uint64_t retired_gate_evals_ = 0;
  mutable std::uint64_t retired_events_ = 0;
  std::uint64_t synced_gate_evals_ = 0;
  std::uint64_t synced_events_ = 0;
  bool started_ = false;
};

class DeterministicJustifier {
 public:
  enum class Status { kJustified, kUnjustifiable, kAborted };
  struct Outcome {
    Status status = Status::kAborted;
    sim::Sequence sequence;  // drives the all-X machine into the target state
  };

  /// `store` (optional) hooks up the cross-fault state-knowledge layer:
  /// every recursion level consults its unjustifiable-cube index (a stored
  /// cube is globally unreachable, so rejecting a sub-requirement it
  /// subsumes is sound at any depth), and a *top-level* kUnjustifiable
  /// result — the completed exhaustive proof — is recorded back.  Sub-level
  /// kUnjustifiable results are never recorded: requirement-cycle pruning
  /// makes them valid only relative to the outer path.
  /// `pool` (optional) recycles FrameModels across recursion levels and
  /// faults; when null the justifier owns a private pool.
  DeterministicJustifier(const netlist::Circuit& c, const SearchLimits& limits,
                         state::StateStore* store = nullptr,
                         FrameModelPool* pool = nullptr);

  Outcome justify(const sim::State3& target, const util::Deadline& deadline);

  const SearchStats& stats() const { return stats_; }

 private:
  Outcome justify_rec(const sim::State3& target, unsigned depth,
                      std::vector<std::string>& path,
                      const util::Deadline& deadline);
  static std::string key_of(const sim::State3& s);

  const netlist::Circuit& c_;
  SearchLimits limits_;
  SearchStats stats_;
  state::StateStore* store_ = nullptr;  // not owned; may be null
  std::unique_ptr<FrameModelPool> own_pool_;  // pool-less fallback
  FrameModelPool* pool_;                      // never null after construction
};

}  // namespace gatpg::atpg
