// Time-frame-expanded circuit model for the deterministic engine.
//
// The sequential circuit is unrolled into `frame_count` copies of its
// combinational logic.  Assignable variables are the primary inputs of every
// frame plus the frame-0 flip-flop outputs ("pseudo inputs" — the state the
// justification phase must later produce).  Flip-flop outputs in frame t+1
// take the value of the flip-flop's D fanin in frame t.
//
// Two three-valued planes (good and faulty) are kept per frame.  When a
// fault is installed, the faulty plane injects it in every frame (a stuck-at
// fault is permanent).  Pseudo-input and PI assignments write both planes —
// the justified state is required of both machines, matching the paper's
// two-goal GA fitness (see DESIGN.md for the soundness discussion: every
// claimed detection is re-verified by the independent fault simulator).
//
// Transition faults (fault::FaultModel) inject *conditionally*: the forcing
// in frame f applies only when the good plane of the fault's launch line
// held the transition's initial value in frame f - skew (skew 1, except 2
// for flip-flop D-pin faults, whose forcing surfaces through the latch one
// frame later).  An X launch merges the forced and fault-free values
// (agreeing values survive, disagreement decays to X) — a sound
// over-approximation of "maybe forced"; frames before the skew horizon are
// unconditionally fault-free (power-up cannot launch).  The incremental
// engine tracks the extra cross-frame dependency with an explicit
// launch-line hook in reeval_node.
//
// Two evaluation engines produce bit-identical values:
//
// * Oblivious (FrameModelConfig{.incremental = false}, the retained
//   reference): assignments only record themselves; simulate() recomputes
//   both planes of every active frame in topological order.  Trivially
//   correct; O(frames × gates) per PODEM decision.
// * Incremental (the default): every assignment propagates through a
//   levelized event queue — only nodes whose value actually changes are
//   re-evaluated, fanouts are scheduled at (frame, level) keys, and changes
//   cross DFF boundaries into later frames.  Each changed value is recorded
//   on a trail, so DecisionStack backtracking restores the exact previous
//   state by popping trail entries instead of re-simulating the window.
//   The D-frontier, po_has_d() and d_reaches_ff_input() are maintained as
//   side effects of propagation.  Cost per decision is O(affected cone).
//
// Orthogonally, two storage layouts produce bit-identical values (see
// DESIGN.md §4h):
//
// * Flat (FrameModelConfig{.flat = true}, the default): both planes live in
//   one flat byte buffer indexed by cell(frame, node) — good in bits 0..1,
//   faulty in bits 2..3 — so composite() and the D-detection summaries are
//   single loads, and combinational gates evaluate both planes at once
//   through a per-gate-type branchless kernel table.  Fault-free models
//   mirror the good pair into the faulty pair so the decode is branch-free.
// * Legacy (.flat = false, the retained reference): the original nested
//   vector<vector<V3>> plane-per-frame layout.
//
// tests/test_frame_model_incr.cpp differential-tests the engines and the
// layouts on randomized operation sequences over every registry circuit.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "atpg/val5.h"
#include "fault/fault.h"
#include "netlist/circuit.h"
#include "sim/seqsim.h"

namespace gatpg::atpg {

struct FrameModelConfig {
  /// Event-driven implication with trail-based backtracking (default) vs
  /// the oblivious full re-simulation reference.
  bool incremental = true;
  /// Flat composite-byte cell storage + kernel-table dispatch (default) vs
  /// the legacy nested-vector plane layout (the retained reference).
  bool flat = true;
};

/// Implication-effort counters, accumulated over the model's lifetime
/// (reset() zeroes them; clear_stats() lets owners fold them elsewhere).
struct FrameModelStats {
  std::uint64_t gate_evals = 0;  // combinational gate evaluations (per plane)
  std::uint64_t events = 0;      // event-queue pops (incremental mode only)
};

// -- Composite-byte cell encoding (flat layout) ------------------------------
//
// One byte per (frame, node) cell holds both planes as two (v1, v0) bit
// pairs: bit0 = good.v1, bit1 = good.v0, bit2 = faulty.v1, bit3 = faulty.v0.
// Per plane: k1 → 01, k0 → 10, X → 00 (11 unused).  The 0x05/0x0A masks
// select the v1/v0 bits of both planes at once, so one AND/OR expression
// evaluates a gate on both planes simultaneously (see kCompGateTable).
namespace compbits {

inline constexpr std::uint8_t kV1Mask = 0x05;  // v1 bits of both planes
inline constexpr std::uint8_t kV0Mask = 0x0A;  // v0 bits of both planes

/// V3 → two-bit plane pattern.  Enum values are k0=0, k1=1, kX=2, so the
/// pattern is simply 2 - enum: k0→10, k1→01, kX→00.
constexpr std::uint8_t bits(sim::V3 v) {
  return static_cast<std::uint8_t>(2 - static_cast<int>(v));
}
/// Two-bit plane pattern → V3 (the unused 11 pattern never occurs).
constexpr sim::V3 v3(std::uint8_t b) { return static_cast<sim::V3>(2 - b); }

constexpr std::uint8_t pack(sim::V3 good, sim::V3 faulty) {
  return static_cast<std::uint8_t>(bits(good) | (bits(faulty) << 2));
}
/// Both planes equal — also used by fault-free models to mirror the good
/// plane into the faulty bits (multiplying the pattern by 0b0101).
constexpr std::uint8_t pack_same(sim::V3 v) {
  return static_cast<std::uint8_t>(bits(v) * kV1Mask);
}
constexpr sim::V3 good(std::uint8_t cell) {
  return v3(static_cast<std::uint8_t>(cell & 0x03));
}
constexpr sim::V3 faulty(std::uint8_t cell) {
  return v3(static_cast<std::uint8_t>((cell >> 2) & 0x03));
}

/// Byte-indexed Composite::is_d() — true for good/faulty = 1/0 (0b1001)
/// and 0/1 (0b0110).
inline constexpr std::array<bool, 16> kIsD = [] {
  std::array<bool, 16> t{};
  t[0b1001] = true;
  t[0b0110] = true;
  return t;
}();
/// Byte-indexed Composite::any_x() — true when either plane pair is 00.
inline constexpr std::array<bool, 16> kAnyX = [] {
  std::array<bool, 16> t{};
  for (int b = 0; b < 16; ++b) t[b] = (b & 0x03) == 0 || (b & 0x0C) == 0;
  return t;
}();

}  // namespace compbits

class FrameModel {
 public:
  /// `fault` may be empty (justification mode: good plane only).
  FrameModel(const netlist::Circuit& c, std::optional<fault::Fault> fault,
             unsigned max_frames, FrameModelConfig config = {});

  /// Reinitializes the model to the exact post-construction state for a
  /// (possibly different) fault / window cap / config, reusing every buffer
  /// whose capacity suffices.  Bit-identical to constructing a fresh model;
  /// the pool below relies on this.  Stats are zeroed (buffer_grows() is
  /// not — it counts allocations over the object's whole lifetime).
  void reset(std::optional<fault::Fault> fault, unsigned max_frames,
             FrameModelConfig config = {});

  const netlist::Circuit& circuit() const { return circuit_; }
  bool has_fault() const { return fault_.has_value(); }
  const fault::Fault& fault() const { return *fault_; }
  bool incremental() const { return config_.incremental; }
  bool flat() const { return config_.flat; }
  const FrameModelStats& stats() const { return stats_; }
  /// Zeroes the lifetime counters (owners fold them into retired tallies
  /// before reusing a model so totals stay exact across reset()).
  void clear_stats() { stats_ = {}; }
  /// Number of times a value/queue/frontier buffer actually had to grow —
  /// stays flat across reset() and window shrink/grow cycles once a model
  /// has seen its largest window (capacity is retained, never released).
  std::uint64_t buffer_grows() const { return buffer_grows_; }

  unsigned frame_count() const { return frame_count_; }
  unsigned max_frames() const { return max_frames_; }
  /// Grows the window by one frame; returns false at the cap.
  bool extend();
  /// Shrinks/grows the window (used when backtracking over extensions).
  void set_frame_count(unsigned n);

  // -- Assignable variables ---------------------------------------------
  void assign_pi(unsigned frame, std::size_t pi_index, sim::V3 v);
  void clear_pi(unsigned frame, std::size_t pi_index);
  sim::V3 pi_value(unsigned frame, std::size_t pi_index) const {
    return pi_assign_[pi_cell(frame, pi_index)];
  }

  void assign_state(std::size_t ff_index, sim::V3 v);
  void clear_state(std::size_t ff_index);
  sim::V3 state_value(std::size_t ff_index) const {
    return state_assign_[ff_index];
  }

  // -- Trail (incremental mode) ------------------------------------------
  /// Position marker into the change trail.  Record a mark before a batch
  /// of assignments, then undo_to(mark) restores values *and* assignments
  /// to exactly the marked state without re-simulation.  Mark 0 is the
  /// post-construction (all-unassigned) state.  In oblivious mode the trail
  /// is empty: trail_mark() is always 0 and undo_to is a no-op (callers
  /// must clear assignments themselves and re-simulate).
  std::size_t trail_mark() const { return trail_.size(); }
  void undo_to(std::size_t mark);

  // -- Values --------------------------------------------------------------
  sim::V3 good(unsigned frame, netlist::NodeId n) const {
    return config_.flat ? compbits::good(comp_[cell(frame, n)])
                        : good_[frame][n];
  }
  sim::V3 faulty(unsigned frame, netlist::NodeId n) const {
    if (config_.flat) return compbits::faulty(comp_[cell(frame, n)]);
    return fault_ ? faulty_[frame][n] : good_[frame][n];
  }
  Composite composite(unsigned frame, netlist::NodeId n) const {
    if (config_.flat) {
      // Fault-free models mirror the good pair into the faulty bits, so
      // this is one load in every configuration.
      const std::uint8_t b = comp_[cell(frame, n)];
      return {compbits::good(b), compbits::faulty(b)};
    }
    return {good(frame, n), faulty(frame, n)};
  }

  /// Oblivious mode: recomputes both planes for all active frames.
  /// Incremental mode: no-op (values are maintained eagerly); safe to call.
  void simulate();

  // -- Fault-effect queries --------------------------------------------------
  /// True if some primary output in some active frame carries D/D̄.
  bool po_has_d() const;
  /// True if some flip-flop D input carries D/D̄ in `frame`.
  bool d_reaches_ff_input(unsigned frame) const;

  /// D-frontier: gates with composite-X output and at least one D/D̄ fanin,
  /// over all active frames.  Returned as (frame, node) pairs in (frame,
  /// topological-position) order — identical in both modes.  The returned
  /// reference aliases a member buffer that the next d_frontier() call
  /// overwrites; copy it if it must survive further model mutation.
  struct FrontierGate {
    unsigned frame;
    netlist::NodeId node;
  };
  const std::vector<FrontierGate>& d_frontier() const;

  /// Extracts the PI assignments of all active frames as a test sequence
  /// (X where unassigned).
  sim::Sequence extract_vectors() const;
  /// Extracts the frame-0 pseudo-input requirements.
  sim::State3 extract_state() const;

 private:
  struct TrailEntry {
    enum Kind : std::uint8_t { kGood, kFaulty, kPi, kState };
    Kind kind;
    sim::V3 old_value;
    unsigned frame;
    std::uint32_t index;  // node id (kGood/kFaulty) or PI/FF index
  };

  void simulate_plane(std::vector<std::vector<sim::V3>>& plane, bool inject);
  /// Evaluates one node of one plane in the legacy layout (sources,
  /// constants, gates; fault injection applied when `inject`).
  sim::V3 eval_node(const std::vector<std::vector<sim::V3>>& plane,
                    unsigned frame, netlist::NodeId n, bool inject);

  // Flat-layout evaluation.
  /// Computes the composite byte of (frame, node) from current assignments
  /// and fanin cells; bumps gate_evals exactly like the per-plane path.
  std::uint8_t compute_comp(unsigned frame, netlist::NodeId n);
  /// Slow path for the fault-site node (pin forcing, per-plane eval).
  std::uint8_t compute_comp_faulted(unsigned frame, netlist::NodeId n);
  void simulate_flat();

  // Incremental machinery.
  void init_incremental();
  void enqueue(unsigned frame, netlist::NodeId n);
  void schedule_fanouts(unsigned frame, netlist::NodeId n);
  void propagate();
  /// Re-evaluates both planes of (frame, node); trails and applies changes,
  /// maintains summaries, and (when `schedule`) enqueues fanouts on change.
  /// Returns true if any plane changed.
  bool reeval_node(unsigned frame, netlist::NodeId n, bool schedule);
  /// Directly recomputes every node of one (newly activated) frame.
  void recompute_frame(unsigned frame);
  /// Transition-fault launch test for a forcing applied in `frame`:
  /// 0 = inactive (fault-free value), 1 = active (forced value),
  /// 2 = X launch (merge the forced and fault-free values).
  int launch_state(unsigned frame) const;
  /// `before`/`after` are composite bytes (compbits encoding) — the flat
  /// path passes its cells straight through; the legacy path packs.
  void note_composite_change(unsigned frame, netlist::NodeId n,
                             std::uint8_t before, std::uint8_t after);
  void refresh_frontier(unsigned frame, netlist::NodeId gate) const;
  std::size_t cell(unsigned frame, netlist::NodeId n) const {
    return static_cast<std::size_t>(frame) * node_stride_ + n;
  }
  std::size_t pi_cell(unsigned frame, std::size_t pi_index) const {
    return static_cast<std::size_t>(frame) * pi_stride_ + pi_index;
  }
  /// Start of the (frame, level) event bucket inside qbuf_.
  std::size_t bucket_base(unsigned frame, std::uint32_t level) const {
    return static_cast<std::size_t>(frame) * node_stride_ +
           level_base_[level];
  }

  /// fault_node_ sentinel for fault-free models (no node compares equal).
  static constexpr netlist::NodeId kNoFaultNode = ~netlist::NodeId{0};

  const netlist::Circuit& circuit_;
  std::optional<fault::Fault> fault_;
  // Hot-path caches (reset() keeps them current): the fault site (sentinel
  // when fault-free) and the [frame × node] / [frame × pi] row strides.
  netlist::NodeId fault_node_ = kNoFaultNode;
  // Transition-fault caches (reset() keeps them current): whether the
  // installed fault is a transition fault, the launch line whose good-plane
  // value gates the forcing, and the launch→forcing frame skew (2 for
  // flip-flop D-pin faults, whose forcing surfaces through the latch one
  // frame later; 1 otherwise).
  bool trans_ = false;
  netlist::NodeId launch_line_ = kNoFaultNode;
  unsigned launch_skew_ = 1;
  std::size_t node_stride_ = 0;
  std::size_t pi_stride_ = 0;
  unsigned max_frames_ = 1;
  FrameModelConfig config_;
  unsigned frame_count_ = 1;
  FrameModelStats stats_;
  std::uint64_t buffer_grows_ = 0;

  // Assignments (flat: [frame × pi]).
  std::vector<sim::V3> pi_assign_;
  std::vector<sim::V3> state_assign_;  // [ff]

  // Flat layout: one composite byte per cell(frame, node).
  std::vector<std::uint8_t> comp_;
  // Per-node both-plane gate kernels (flat layout; circuit-static).
  using CompGateFn = std::uint8_t (*)(const std::uint8_t*,
                                      const netlist::NodeId*, std::size_t);
  std::vector<CompGateFn> comp_fn_;

  // Legacy layout: simulated planes [frame][node].
  std::vector<std::vector<sim::V3>> good_;
  std::vector<std::vector<sim::V3>> faulty_;

  // Change trail (incremental mode).
  std::vector<TrailEntry> trail_;

  // Event queue: a bump-allocated CSR bucket arena keyed by
  // frame * (max_level + 1) + level.  Each frame's buckets partition one
  // node_count-sized slab of qbuf_ (bucket capacity = number of nodes on
  // that level, so appends never overflow); qfill_ counts occupancy.  Keys
  // strictly increase during propagation (fanouts are deeper in the same
  // frame or sources of a later frame), so one ascending cursor drains it.
  std::vector<netlist::NodeId> qbuf_;   // [frame × node] arena
  std::vector<std::uint32_t> qfill_;    // [frame × level] occupancy
  std::vector<std::uint32_t> level_base_;  // level → node-slab offset
  std::vector<std::uint32_t> node_level_;  // node → level (enqueue cache)
  std::vector<std::uint32_t> node_slab_;   // node → level_base_[level(node)]
  std::vector<char> in_queue_;          // [frame × node]
  std::size_t queue_cursor_ = 0;
  std::size_t queue_pending_ = 0;
  std::size_t level_stride_ = 1;  // max_level + 1

  // Incrementally maintained fault-effect summaries (fault mode only).
  std::vector<int> po_d_count_;    // per frame: POs carrying D/D̄
  std::vector<int> ffin_d_count_;  // per frame: FF D inputs carrying D/D̄
  std::vector<std::uint32_t> ff_consumer_count_;  // DFFs fed by node n
  std::vector<std::uint32_t> topo_pos_;  // node → position in topo_order
  // D-frontier membership: bitmap + per-frame append-only member arena
  // (each gate listed at most once per frame, so node_count-sized slabs
  // suffice), compacted and sorted lazily on query (hence mutable).
  mutable std::vector<char> in_frontier_;  // [frame × node]
  mutable std::vector<char> listed_;       // [frame × node]
  mutable std::vector<netlist::NodeId> frontier_arena_;  // [frame × node]
  mutable std::vector<std::uint32_t> frontier_fill_;     // per frame
  // d_frontier() output buffer (reused across calls; no per-query allocs).
  mutable std::vector<FrontierGate> frontier_out_;
};

class FrameModelPool;

/// Owning or pool-borrowed FrameModel handle.  Pool-borrowed handles return
/// the model to the pool's free list on destruction; standalone handles own
/// and delete it.  Handles must not outlive the pool that issued them.
class FrameModelHandle {
 public:
  FrameModelHandle() = default;
  FrameModelHandle(FrameModelHandle&& o) noexcept
      : model_(o.model_), pool_(o.pool_) {
    o.model_ = nullptr;
    o.pool_ = nullptr;
  }
  FrameModelHandle& operator=(FrameModelHandle&& o) noexcept {
    if (this != &o) {
      release();
      model_ = o.model_;
      pool_ = o.pool_;
      o.model_ = nullptr;
      o.pool_ = nullptr;
    }
    return *this;
  }
  FrameModelHandle(const FrameModelHandle&) = delete;
  FrameModelHandle& operator=(const FrameModelHandle&) = delete;
  ~FrameModelHandle() { release(); }

  FrameModel* get() const { return model_; }
  FrameModel& operator*() const { return *model_; }
  FrameModel* operator->() const { return model_; }
  explicit operator bool() const { return model_ != nullptr; }

 private:
  friend class FrameModelPool;
  FrameModelHandle(FrameModel* m, FrameModelPool* pool)
      : model_(m), pool_(pool) {}
  void release();

  FrameModel* model_ = nullptr;
  FrameModelPool* pool_ = nullptr;  // null: standalone (handle deletes)
};

/// Recycles FrameModels across faults: acquire() pops a free model and
/// reset()s it (bit-identical to fresh construction) instead of rebuilding
/// every buffer per target.  Single-circuit, single-threaded — matches the
/// deterministic engines' serial per-fault loop.  constructions() exposes
/// how many models were actually built, so sessions can prove reuse.
class FrameModelPool {
 public:
  explicit FrameModelPool(const netlist::Circuit& c) : circuit_(c) {}

  FrameModelHandle acquire(std::optional<fault::Fault> fault,
                           unsigned max_frames, FrameModelConfig config = {}) {
    ++acquires_;
    ++outstanding_;
    if (outstanding_ > peak_outstanding_) peak_outstanding_ = outstanding_;
    if (free_.empty()) {
      ++constructions_;
      all_.push_back(std::make_unique<FrameModel>(circuit_, std::move(fault),
                                                  max_frames, config));
      return {all_.back().get(), this};
    }
    FrameModel* m = free_.back();
    free_.pop_back();
    m->reset(std::move(fault), max_frames, config);
    return {m, this};
  }

  /// Pool-less fallback: a handle that owns a freshly built model.
  static FrameModelHandle standalone(const netlist::Circuit& c,
                                     std::optional<fault::Fault> fault,
                                     unsigned max_frames,
                                     FrameModelConfig config = {}) {
    return {new FrameModel(c, std::move(fault), max_frames, config), nullptr};
  }

  const netlist::Circuit& circuit() const { return circuit_; }
  std::uint64_t constructions() const { return constructions_; }
  std::uint64_t acquires() const { return acquires_; }
  /// Models owned by the pool (free or checked out).
  std::size_t inventory() const { return all_.size(); }

  /// Handles currently checked out.
  std::size_t outstanding() const { return outstanding_; }

  /// Resets the peak-outstanding watermark; subsequent acquires raise it
  /// again.  The speculative targeting layer brackets each fault with
  /// begin_peak_window()/peak_outstanding() to account pool demand in a
  /// lane-count-independent way.
  void begin_peak_window() { peak_outstanding_ = outstanding_; }

  /// Highest outstanding() seen since the last begin_peak_window().
  std::size_t peak_outstanding() const { return peak_outstanding_; }

  /// Pre-builds free models until the inventory reaches `inventory` —
  /// snapshot resume recreates a checkpointed pool's inventory this way so
  /// subsequent demand grows (or not) exactly like the uninterrupted run's
  /// pool.  Deliberately moves neither constructions() nor acquires(): the
  /// resumed engine continues the checkpointed tallies, and inventory
  /// rebuilds are not new work.
  void prewarm(std::size_t inventory) {
    while (all_.size() < inventory) {
      all_.push_back(
          std::make_unique<FrameModel>(circuit_, std::nullopt, 1u,
                                       FrameModelConfig{}));
      free_.push_back(all_.back().get());
    }
  }

 private:
  friend class FrameModelHandle;
  void release(FrameModel* m) {
    free_.push_back(m);
    --outstanding_;
  }

  const netlist::Circuit& circuit_;
  std::vector<std::unique_ptr<FrameModel>> all_;
  std::vector<FrameModel*> free_;
  std::uint64_t constructions_ = 0;
  std::uint64_t acquires_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t peak_outstanding_ = 0;
};

inline void FrameModelHandle::release() {
  if (!model_) return;
  if (pool_ != nullptr) {
    pool_->release(model_);
  } else {
    delete model_;
  }
  model_ = nullptr;
  pool_ = nullptr;
}

}  // namespace gatpg::atpg
