// Time-frame-expanded circuit model for the deterministic engine.
//
// The sequential circuit is unrolled into `frame_count` copies of its
// combinational logic.  Assignable variables are the primary inputs of every
// frame plus the frame-0 flip-flop outputs ("pseudo inputs" — the state the
// justification phase must later produce).  Flip-flop outputs in frame t+1
// take the value of the flip-flop's D fanin in frame t.
//
// Two three-valued planes (good and faulty) are kept per frame.  When a
// fault is installed, the faulty plane injects it in every frame (a stuck-at
// fault is permanent).  Pseudo-input and PI assignments write both planes —
// the justified state is required of both machines, matching the paper's
// two-goal GA fitness (see DESIGN.md for the soundness discussion: every
// claimed detection is re-verified by the independent fault simulator).
//
// Two evaluation engines produce bit-identical values:
//
// * Oblivious (FrameModelConfig{.incremental = false}, the retained
//   reference): assignments only record themselves; simulate() recomputes
//   both planes of every active frame in topological order.  Trivially
//   correct; O(frames × gates) per PODEM decision.
// * Incremental (the default): every assignment propagates through a
//   levelized event queue — only nodes whose value actually changes are
//   re-evaluated, fanouts are scheduled at (frame, level) keys, and changes
//   cross DFF boundaries into later frames.  Each changed value is recorded
//   on a trail, so DecisionStack backtracking restores the exact previous
//   state by popping trail entries instead of re-simulating the window.
//   The D-frontier, po_has_d() and d_reaches_ff_input() are maintained as
//   side effects of propagation.  Cost per decision is O(affected cone).
//
// tests/test_frame_model_incr.cpp differential-tests the two engines on
// randomized operation sequences over every registry circuit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/val5.h"
#include "fault/fault.h"
#include "netlist/circuit.h"
#include "sim/seqsim.h"

namespace gatpg::atpg {

struct FrameModelConfig {
  /// Event-driven implication with trail-based backtracking (default) vs
  /// the oblivious full re-simulation reference.
  bool incremental = true;
};

/// Implication-effort counters, accumulated over the model's lifetime.
struct FrameModelStats {
  std::uint64_t gate_evals = 0;  // combinational gate evaluations (per plane)
  std::uint64_t events = 0;      // event-queue pops (incremental mode only)
};

class FrameModel {
 public:
  /// `fault` may be empty (justification mode: good plane only).
  FrameModel(const netlist::Circuit& c, std::optional<fault::Fault> fault,
             unsigned max_frames, FrameModelConfig config = {});

  const netlist::Circuit& circuit() const { return circuit_; }
  bool has_fault() const { return fault_.has_value(); }
  const fault::Fault& fault() const { return *fault_; }
  bool incremental() const { return config_.incremental; }
  const FrameModelStats& stats() const { return stats_; }

  unsigned frame_count() const { return frame_count_; }
  unsigned max_frames() const { return max_frames_; }
  /// Grows the window by one frame; returns false at the cap.
  bool extend();
  /// Shrinks/grows the window (used when backtracking over extensions).
  void set_frame_count(unsigned n);

  // -- Assignable variables ---------------------------------------------
  void assign_pi(unsigned frame, std::size_t pi_index, sim::V3 v);
  void clear_pi(unsigned frame, std::size_t pi_index);
  sim::V3 pi_value(unsigned frame, std::size_t pi_index) const;

  void assign_state(std::size_t ff_index, sim::V3 v);
  void clear_state(std::size_t ff_index);
  sim::V3 state_value(std::size_t ff_index) const;

  // -- Trail (incremental mode) ------------------------------------------
  /// Position marker into the change trail.  Record a mark before a batch
  /// of assignments, then undo_to(mark) restores values *and* assignments
  /// to exactly the marked state without re-simulation.  Mark 0 is the
  /// post-construction (all-unassigned) state.  In oblivious mode the trail
  /// is empty: trail_mark() is always 0 and undo_to is a no-op (callers
  /// must clear assignments themselves and re-simulate).
  std::size_t trail_mark() const { return trail_.size(); }
  void undo_to(std::size_t mark);

  // -- Values --------------------------------------------------------------
  sim::V3 good(unsigned frame, netlist::NodeId n) const {
    return good_[frame][n];
  }
  sim::V3 faulty(unsigned frame, netlist::NodeId n) const {
    return fault_ ? faulty_[frame][n] : good_[frame][n];
  }
  Composite composite(unsigned frame, netlist::NodeId n) const {
    return {good(frame, n), faulty(frame, n)};
  }

  /// Oblivious mode: recomputes both planes for all active frames.
  /// Incremental mode: no-op (values are maintained eagerly); safe to call.
  void simulate();

  // -- Fault-effect queries --------------------------------------------------
  /// True if some primary output in some active frame carries D/D̄.
  bool po_has_d() const;
  /// True if some flip-flop D input carries D/D̄ in `frame`.
  bool d_reaches_ff_input(unsigned frame) const;

  /// D-frontier: gates with composite-X output and at least one D/D̄ fanin,
  /// over all active frames.  Returned as (frame, node) pairs in (frame,
  /// topological-position) order — identical in both modes.
  struct FrontierGate {
    unsigned frame;
    netlist::NodeId node;
  };
  std::vector<FrontierGate> d_frontier() const;

  /// Extracts the PI assignments of all active frames as a test sequence
  /// (X where unassigned).
  sim::Sequence extract_vectors() const;
  /// Extracts the frame-0 pseudo-input requirements.
  sim::State3 extract_state() const;

 private:
  struct TrailEntry {
    enum Kind : std::uint8_t { kGood, kFaulty, kPi, kState };
    Kind kind;
    sim::V3 old_value;
    unsigned frame;
    std::uint32_t index;  // node id (kGood/kFaulty) or PI/FF index
  };

  void simulate_plane(std::vector<std::vector<sim::V3>>& plane, bool inject);
  /// Evaluates one node of one plane (sources, constants, gates; fault
  /// injection applied when `inject`).  Shared by both engines so their
  /// semantics cannot drift.
  sim::V3 eval_node(const std::vector<std::vector<sim::V3>>& plane,
                    unsigned frame, netlist::NodeId n, bool inject);

  // Incremental machinery.
  void init_incremental();
  void enqueue(unsigned frame, netlist::NodeId n);
  void schedule_fanouts(unsigned frame, netlist::NodeId n);
  void propagate();
  /// Re-evaluates both planes of (frame, node); trails and applies changes,
  /// maintains summaries, and (when `schedule`) enqueues fanouts on change.
  /// Returns true if any plane changed.
  bool reeval_node(unsigned frame, netlist::NodeId n, bool schedule);
  /// Directly recomputes every node of one (newly activated) frame.
  void recompute_frame(unsigned frame);
  void note_composite_change(unsigned frame, netlist::NodeId n,
                             const Composite& before, const Composite& after);
  void refresh_frontier(unsigned frame, netlist::NodeId gate) const;
  std::size_t cell(unsigned frame, netlist::NodeId n) const {
    return static_cast<std::size_t>(frame) * circuit_.node_count() + n;
  }

  const netlist::Circuit& circuit_;
  std::optional<fault::Fault> fault_;
  unsigned max_frames_;
  FrameModelConfig config_;
  unsigned frame_count_ = 1;
  FrameModelStats stats_;

  // Assignments.
  std::vector<std::vector<sim::V3>> pi_assign_;  // [frame][pi]
  std::vector<sim::V3> state_assign_;            // [ff]

  // Simulated planes: [frame][node].
  std::vector<std::vector<sim::V3>> good_;
  std::vector<std::vector<sim::V3>> faulty_;

  // Scratch for faulted-pin gate evaluation (no per-eval allocation).
  std::vector<sim::V3> scratch_ins_;
  std::vector<netlist::NodeId> scratch_idx_;

  // Change trail (incremental mode).
  std::vector<TrailEntry> trail_;

  // Event queue: buckets keyed by frame * (max_level + 1) + level.  Keys
  // strictly increase during propagation (fanouts are deeper in the same
  // frame or sources of a later frame), so one ascending cursor drains it.
  std::vector<std::vector<netlist::NodeId>> buckets_;
  std::vector<char> in_queue_;  // [frame × node]
  std::size_t queue_cursor_ = 0;
  std::size_t queue_pending_ = 0;
  std::size_t level_stride_ = 1;  // max_level + 1

  // Incrementally maintained fault-effect summaries (fault mode only).
  std::vector<int> po_d_count_;    // per frame: POs carrying D/D̄
  std::vector<int> ffin_d_count_;  // per frame: FF D inputs carrying D/D̄
  std::vector<std::uint32_t> ff_consumer_count_;  // DFFs fed by node n
  std::vector<std::uint32_t> topo_pos_;  // node → position in topo_order
  // D-frontier membership: bitmap + per-frame append-only member list,
  // compacted and sorted lazily on query (hence mutable).
  mutable std::vector<char> in_frontier_;  // [frame × node]
  mutable std::vector<char> listed_;       // [frame × node]
  mutable std::vector<std::vector<netlist::NodeId>> frontier_members_;
};

}  // namespace gatpg::atpg
