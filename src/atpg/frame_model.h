// Time-frame-expanded circuit model for the deterministic engine.
//
// The sequential circuit is unrolled into `frame_count` copies of its
// combinational logic.  Assignable variables are the primary inputs of every
// frame plus the frame-0 flip-flop outputs ("pseudo inputs" — the state the
// justification phase must later produce).  Flip-flop outputs in frame t+1
// take the value of the flip-flop's D fanin in frame t.
//
// Two three-valued planes (good and faulty) are kept per frame.  When a
// fault is installed, the faulty plane injects it in every frame (a stuck-at
// fault is permanent).  Pseudo-input and PI assignments write both planes —
// the justified state is required of both machines, matching the paper's
// two-goal GA fitness (see DESIGN.md for the soundness discussion: every
// claimed detection is re-verified by the independent fault simulator).
//
// simulate() recomputes all active frames obliviously in topological order.
// PODEM assigns one input at a time and re-implies; at the circuit sizes of
// the evaluation suite this direct scheme is fast enough and trivially
// correct, which the ATPG soundness property tests lean on.
#pragma once

#include <optional>
#include <vector>

#include "atpg/val5.h"
#include "fault/fault.h"
#include "netlist/circuit.h"
#include "sim/seqsim.h"

namespace gatpg::atpg {

class FrameModel {
 public:
  /// `fault` may be empty (justification mode: good plane only).
  FrameModel(const netlist::Circuit& c, std::optional<fault::Fault> fault,
             unsigned max_frames);

  const netlist::Circuit& circuit() const { return circuit_; }
  bool has_fault() const { return fault_.has_value(); }
  const fault::Fault& fault() const { return *fault_; }

  unsigned frame_count() const { return frame_count_; }
  unsigned max_frames() const { return max_frames_; }
  /// Grows the window by one frame; returns false at the cap.
  bool extend();
  /// Shrinks/grows the window (used when backtracking over extensions).
  void set_frame_count(unsigned n);

  // -- Assignable variables ---------------------------------------------
  void assign_pi(unsigned frame, std::size_t pi_index, sim::V3 v);
  void clear_pi(unsigned frame, std::size_t pi_index);
  sim::V3 pi_value(unsigned frame, std::size_t pi_index) const;

  void assign_state(std::size_t ff_index, sim::V3 v);
  void clear_state(std::size_t ff_index);
  sim::V3 state_value(std::size_t ff_index) const;

  // -- Values --------------------------------------------------------------
  sim::V3 good(unsigned frame, netlist::NodeId n) const {
    return good_[frame][n];
  }
  sim::V3 faulty(unsigned frame, netlist::NodeId n) const {
    return fault_ ? faulty_[frame][n] : good_[frame][n];
  }
  Composite composite(unsigned frame, netlist::NodeId n) const {
    return {good(frame, n), faulty(frame, n)};
  }

  /// Recomputes both planes for all active frames.
  void simulate();

  // -- Fault-effect queries (valid after simulate()) ------------------------
  /// True if some primary output in some active frame carries D/D̄.
  bool po_has_d() const;
  /// The (frame, po) location of the first D on a PO.
  bool d_reaches_ff_input(unsigned frame) const;

  /// D-frontier: gates with composite-X output and at least one D/D̄ fanin,
  /// over all active frames.  Returned as (frame, node) pairs.
  struct FrontierGate {
    unsigned frame;
    netlist::NodeId node;
  };
  std::vector<FrontierGate> d_frontier() const;

  /// Extracts the PI assignments of all active frames as a test sequence
  /// (X where unassigned).
  sim::Sequence extract_vectors() const;
  /// Extracts the frame-0 pseudo-input requirements.
  sim::State3 extract_state() const;

 private:
  void simulate_plane(std::vector<std::vector<sim::V3>>& plane,
                      bool inject) const;

  const netlist::Circuit& circuit_;
  std::optional<fault::Fault> fault_;
  unsigned max_frames_;
  unsigned frame_count_ = 1;

  // Assignments.
  std::vector<std::vector<sim::V3>> pi_assign_;  // [frame][pi]
  std::vector<sim::V3> state_assign_;            // [ff]

  // Simulated planes: [frame][node].
  std::vector<std::vector<sim::V3>> good_;
  std::vector<std::vector<sim::V3>> faulty_;
};

}  // namespace gatpg::atpg
