// Composite good/faulty value view (the classic five values 0, 1, D, D̄, X).
//
// The deterministic engine simulates the good and faulty machines as two
// three-valued planes; a node's composite value is the pair.  D (good 1 /
// faulty 0) and D̄ (good 0 / faulty 1) mark fault effects; a composite is
// "unassigned" when either plane is still X.  Keeping the planes separate is
// strictly more precise than a scalar 5-valued encoding (it also represents
// 1/X, X/0, ... — the extra values of HITEC's 9-valued algebra).
#pragma once

#include "sim/logic3.h"

namespace gatpg::atpg {

struct Composite {
  sim::V3 good = sim::V3::kX;
  sim::V3 faulty = sim::V3::kX;

  bool is_d() const {
    return good != sim::V3::kX && faulty != sim::V3::kX && good != faulty;
  }
  bool any_x() const {
    return good == sim::V3::kX || faulty == sim::V3::kX;
  }
  bool both_binary() const {
    return good != sim::V3::kX && faulty != sim::V3::kX;
  }

  friend constexpr bool operator==(const Composite&, const Composite&) =
      default;
};

inline char composite_char(const Composite& c) {
  if (c.good == sim::V3::k1 && c.faulty == sim::V3::k0) return 'D';
  if (c.good == sim::V3::k0 && c.faulty == sim::V3::k1) return 'd';  // D-bar
  if (c.good == c.faulty) return sim::v3_char(c.good);
  return '?';  // mixed with X, e.g. 1/X
}

}  // namespace gatpg::atpg
