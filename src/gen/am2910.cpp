#include "gen/am2910.h"

#include "gen/datapath.h"

namespace gatpg::gen {

using netlist::NodeId;

netlist::Circuit make_am2910(std::string name) {
  constexpr unsigned kWidth = 12;
  constexpr unsigned kStackDepth = 5;

  netlist::CircuitBuilder b;
  DatapathBuilder d(b);

  const Bus i = d.input_bus("i", 4);
  const Bus data = d.input_bus("d", kWidth);
  const NodeId cc_n = b.add_input("cc_n");
  const NodeId ccen_n = b.add_input("ccen_n");
  const NodeId rld_n = b.add_input("rld_n");
  const NodeId ci = b.add_input("ci");

  const Bus upc = d.register_bus("upc", kWidth);
  const Bus r = d.register_bus("r", kWidth);
  const Bus sp = d.register_bus("sp", 3);
  std::vector<Bus> stack(kStackDepth);
  for (unsigned k = 0; k < kStackDepth; ++k) {
    stack[k] = d.register_bus("f" + std::to_string(k) + "_", kWidth);
  }

  const Bus instr = d.decoder("op", i);  // one-hot, 16 terms
  auto op = [&](Am2910Op o) { return instr[static_cast<unsigned>(o)]; };

  // Condition: pass when CCEN_n is high (disabled) or CC_n is low (true).
  const NodeId pass =
      d.or2("pass", ccen_n, d.inv("ncc", cc_n));
  const NodeId fail = d.inv("fail", pass);

  const NodeId r_zero = d.is_zero("rz", r);
  const NodeId r_nz = d.inv("rnz", r_zero);

  // ---- Y source selection -------------------------------------------------
  // D: JMAP; pass-cases of CJS/CJP/JSRP/CJV/JRP/CJPP; RPCT with R!=0;
  //    TWB fail with R==0.
  Bus d_terms{
      op(Am2910Op::kJmap),
      d.and2("yd_cjs", op(Am2910Op::kCjs), pass),
      d.and2("yd_cjp", op(Am2910Op::kCjp), pass),
      d.and2("yd_jsrp", op(Am2910Op::kJsrp), pass),
      d.and2("yd_cjv", op(Am2910Op::kCjv), pass),
      d.and2("yd_jrp", op(Am2910Op::kJrp), pass),
      d.and2("yd_cjpp", op(Am2910Op::kCjpp), pass),
      d.and2("yd_rpct", op(Am2910Op::kRpct), r_nz),
      d.and2("yd_twb",
             d.and2("yd_twb_f", op(Am2910Op::kTwb), fail), r_zero),
  };
  const NodeId sel_d = d.orn("sel_d", d_terms);

  // R: fail-cases of JSRP and JRP.
  const NodeId sel_r =
      d.or2("sel_r", d.and2("yr_jsrp", op(Am2910Op::kJsrp), fail),
            d.and2("yr_jrp", op(Am2910Op::kJrp), fail));

  // F (top of stack): RFCT with R!=0; CRTN pass; LOOP fail; TWB fail R!=0.
  Bus f_terms{
      d.and2("yf_rfct", op(Am2910Op::kRfct), r_nz),
      d.and2("yf_crtn", op(Am2910Op::kCrtn), pass),
      d.and2("yf_loop", op(Am2910Op::kLoop), fail),
      d.and2("yf_twb",
             d.and2("yf_twb_f", op(Am2910Op::kTwb), fail), r_nz),
  };
  const NodeId sel_f = d.orn("sel_f", f_terms);

  // ZERO: JZ.  uPC: everything else.
  const NodeId sel_zero = d.buf("sel_zero", op(Am2910Op::kJz));
  const NodeId sel_upc = b.add_gate(
      netlist::GateType::kNor, "sel_upc", {sel_d, sel_r, sel_f, sel_zero});

  // ---- Stack ---------------------------------------------------------------
  // sp one-hot decode (values 0..5 used; 6,7 unreachable).
  const Bus sp_onehot = d.decoder("spd", sp);
  const NodeId full = d.buf("full", sp_onehot[kStackDepth]);
  const NodeId empty = d.buf("empty", sp_onehot[0]);

  Bus push_terms{
      d.and2("pu_cjs", op(Am2910Op::kCjs), pass),
      op(Am2910Op::kPush),
      op(Am2910Op::kJsrp),
  };
  const NodeId push = d.orn("push", push_terms);
  Bus pop_terms{
      d.and2("po_rfct", op(Am2910Op::kRfct), r_zero),
      d.and2("po_crtn", op(Am2910Op::kCrtn), pass),
      d.and2("po_cjpp", op(Am2910Op::kCjpp), pass),
      d.and2("po_loop", op(Am2910Op::kLoop), pass),
      d.and2("po_twb_p", op(Am2910Op::kTwb), pass),
      d.and2("po_twb_f",
             d.and2("po_twb_fr", op(Am2910Op::kTwb), fail), r_zero),
  };
  const NodeId pop = d.orn("pop", pop_terms);
  const NodeId clear = op(Am2910Op::kJz);

  const NodeId push_eff = d.and2("push_eff", push, d.inv("nfull", full));
  const NodeId pop_eff = d.and2("pop_eff", pop, d.inv("nempty", empty));

  // Top of stack: stack[sp - 1].
  Bus tos(kWidth);
  for (unsigned bit = 0; bit < kWidth; ++bit) {
    Bus terms(kStackDepth);
    for (unsigned k = 0; k < kStackDepth; ++k) {
      terms[k] = d.and2("tos" + std::to_string(bit) + "_" + std::to_string(k),
                        sp_onehot[k + 1], stack[k][bit]);
    }
    tos[bit] = d.orn("tos" + std::to_string(bit), terms);
  }

  // sp' = clear ? 0 : push_eff ? sp+1 : pop_eff ? sp-1 : sp.
  const auto sp_inc = d.incrementer("spi", sp, d.const1("sp_one"));
  Bus minus_one{d.const1("spm0"), d.const1("spm1"), d.const1("spm2")};
  const auto sp_dec = d.adder("spdd", sp, minus_one, d.const0("sp_cin"));
  {
    const Bus after_pop = d.mux2("sp_p", pop_eff, sp_dec.sum, sp);
    const Bus after_push = d.mux2("sp_u", push_eff, sp_inc.sum, after_pop);
    const Bus next = d.gate_bus("sp_n", after_push, d.inv("nclear", clear));
    d.connect_register(sp, next);
  }

  // Stack cell write: on push, stack[sp] <- uPC.
  for (unsigned k = 0; k < kStackDepth; ++k) {
    const NodeId write =
        d.and2("fw" + std::to_string(k), push_eff, sp_onehot[k]);
    const Bus next =
        d.mux2("f" + std::to_string(k) + "n", write, upc, stack[k]);
    d.connect_register(stack[k], next);
  }

  // ---- Counter/register R --------------------------------------------------
  // Load from D on RLD_n low, on LDCT, or on PUSH with pass.
  Bus rload_terms{
      d.inv("rld", rld_n),
      op(Am2910Op::kLdct),
      d.and2("rl_push", op(Am2910Op::kPush), pass),
  };
  const NodeId r_load = d.orn("r_load", rload_terms);
  Bus rdec_terms{
      d.and2("rd_rfct", op(Am2910Op::kRfct), r_nz),
      d.and2("rd_rpct", op(Am2910Op::kRpct), r_nz),
      d.and2("rd_twb",
             d.and2("rd_twb_f", op(Am2910Op::kTwb), fail), r_nz),
  };
  const NodeId r_dec = d.orn("r_dec", rdec_terms);
  Bus ones(kWidth);
  for (unsigned bit = 0; bit < kWidth; ++bit) {
    ones[bit] = d.const1("rm" + std::to_string(bit));
  }
  const auto r_minus = d.adder("rsub", r, ones, d.const0("r_cin"));
  {
    const Bus after_dec = d.mux2("r_d", r_dec, r_minus.sum, r);
    const Bus next = d.mux2("r_n", r_load, data, after_dec);
    d.connect_register(r, next);
  }

  // ---- Y and uPC -------------------------------------------------------
  Bus y(kWidth);
  for (unsigned bit = 0; bit < kWidth; ++bit) {
    const std::string n = "y" + std::to_string(bit);
    Bus terms{
        d.and2(n + "_d", data[bit], sel_d),
        d.and2(n + "_r", r[bit], sel_r),
        d.and2(n + "_f", tos[bit], sel_f),
        d.and2(n + "_u", upc[bit], sel_upc),
    };
    y[bit] = d.orn(n, terms);
  }
  const auto upc_next = d.incrementer("upci", y, ci);
  d.connect_register(upc, upc_next.sum);

  // ---- Outputs -------------------------------------------------------------
  d.output_bus(y);
  b.mark_output(d.inv("full_n", full));
  b.mark_output(d.or2("pl_n", op(Am2910Op::kJmap), op(Am2910Op::kCjv)));
  b.mark_output(d.inv("map_n", op(Am2910Op::kJmap)));
  b.mark_output(d.inv("vect_n", op(Am2910Op::kCjv)));

  return std::move(b).build(std::move(name));
}

}  // namespace gatpg::gen
