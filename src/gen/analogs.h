// ISCAS89-analog synthetic circuits.
//
// The real ISCAS89 netlists are not distributable inside this repository, so
// the Table II rows are reproduced on generated stand-ins g298..g5378 whose
// PI/flip-flop/gate profiles and control-vs-data character track the
// corresponding s-circuits (see DESIGN.md substitutions; real .bench files
// dropped into the data directory take precedence — registry.h).  An analog
// is assembled from blocks wired acyclically over a growing signal pool:
//   * synthesized Moore FSM blocks (control-dominant character),
//   * enabled counters and shift registers (sequential depth),
//   * random glue gates and XOR-mixed outputs (observability structure).
// A global reset pin initializes FSMs and counters from the power-up all-X
// state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.h"

namespace gatpg::gen {

struct AnalogSpec {
  std::string name;
  unsigned data_inputs = 3;
  unsigned outputs = 4;
  struct FsmBlock {
    unsigned states;
    unsigned inputs;
  };
  std::vector<FsmBlock> fsms;
  std::vector<unsigned> counters;  // widths
  std::vector<unsigned> shifts;    // widths
  unsigned glue_gates = 24;
  std::uint64_t seed = 1;
};

netlist::Circuit make_analog(const AnalogSpec& spec);

/// Profiles for the Table II analog suite (g298 ... g5378); names mirror the
/// ISCAS89 circuits they stand in for.
const std::vector<AnalogSpec>& analog_suite();

}  // namespace gatpg::gen
