#include "gen/divider.h"

#include <stdexcept>

#include "gen/datapath.h"

namespace gatpg::gen {

using netlist::NodeId;

netlist::Circuit make_divider(unsigned width, std::string name) {
  if (width < 2 || width > 32) {
    throw std::invalid_argument("divider width out of range");
  }
  if (name.empty()) name = "div" + std::to_string(width);

  netlist::CircuitBuilder b;
  DatapathBuilder d(b);

  const NodeId reset = b.add_input("reset");
  const NodeId start = b.add_input("start");
  const Bus a_in = d.input_bus("a", width);
  const Bus b_in = d.input_bus("b", width);

  const Bus rem = d.register_bus("rem", width);
  const Bus dvr = d.register_bus("dvr", width);
  const Bus quo = d.register_bus("quo", width);
  const NodeId busy = b.add_dff("busy");

  const NodeId idle = d.inv("idle", busy);
  const NodeId load = d.and2("load", start, idle);
  const NodeId nload = d.inv("nload", load);

  // rem - dvr; carry out == 1 means rem >= dvr (no borrow).
  const auto sub = d.subtractor("sub", rem, dvr);
  const NodeId dvr_zero = d.is_zero("dvrz", dvr);
  const NodeId can_sub =
      d.and2("can_sub", sub.carry_out, d.inv("ndvrz", dvr_zero));
  const NodeId step = d.and2("step", busy, can_sub);

  const auto quo_inc = d.incrementer("qinc", quo, d.const1("qone"));

  // busy' = NOT reset AND (load OR (busy AND can_sub))
  const NodeId nreset = d.inv("nreset", reset);
  b.set_dff_input(
      busy, d.and2("busy_n", d.or2("busy_o", load, step), nreset));

  // rem' = load ? a : step ? rem - dvr : rem
  {
    const Bus stepped = d.mux2("rem_s", step, sub.sum, rem);
    d.connect_register(rem, d.mux2("rem_n", load, a_in, stepped));
  }
  // dvr' = load ? b : dvr
  d.connect_register(dvr, d.mux2("dvr_n", load, b_in, dvr));
  // quo' = load ? 0 : step ? quo + 1 : quo
  {
    const Bus stepped = d.mux2("quo_s", step, quo_inc.sum, quo);
    d.connect_register(quo, d.gate_bus("quo_n", stepped, nload));
  }

  for (unsigned i = 0; i < width; ++i) {
    b.mark_output(d.buf("q_out" + std::to_string(i), quo[i]));
  }
  for (unsigned i = 0; i < width; ++i) {
    b.mark_output(d.buf("r_out" + std::to_string(i), rem[i]));
  }
  b.mark_output(d.inv("done", busy));

  return std::move(b).build(std::move(name));
}

}  // namespace gatpg::gen
