// Structural datapath-building helpers on top of CircuitBuilder.
//
// The synthesized evaluation circuits (Am2910 sequencer, divider,
// multiplier, parallel controller) are assembled from word-level pieces:
// buses, registers, muxes, ripple adders/subtractors, comparators and
// decoders.  A Bus is a little-endian vector of nodes (bit 0 first).  Every
// helper names its gates under a caller-supplied prefix so netlists stay
// debuggable.
#pragma once

#include <string>
#include <vector>

#include "netlist/builder.h"

namespace gatpg::gen {

using Bus = std::vector<netlist::NodeId>;

class DatapathBuilder {
 public:
  explicit DatapathBuilder(netlist::CircuitBuilder& b) : b_(b) {}

  netlist::CircuitBuilder& builder() { return b_; }

  // -- Primitive conveniences ---------------------------------------------
  netlist::NodeId buf(const std::string& name, netlist::NodeId a);
  netlist::NodeId inv(const std::string& name, netlist::NodeId a);
  netlist::NodeId and2(const std::string& name, netlist::NodeId a,
                       netlist::NodeId b);
  netlist::NodeId or2(const std::string& name, netlist::NodeId a,
                      netlist::NodeId b);
  netlist::NodeId xor2(const std::string& name, netlist::NodeId a,
                       netlist::NodeId b);
  netlist::NodeId andn(const std::string& name, const Bus& ins);
  netlist::NodeId orn(const std::string& name, const Bus& ins);

  // -- Buses ----------------------------------------------------------------
  /// `width` primary inputs named prefix0..prefixN-1.
  Bus input_bus(const std::string& prefix, std::size_t width);
  /// `width` flip-flops (D inputs bound later via connect_register).
  Bus register_bus(const std::string& prefix, std::size_t width);
  /// Binds D inputs of a register bus.
  void connect_register(const Bus& q, const Bus& d);
  /// Marks every bit as a primary output.
  void output_bus(const Bus& bus);

  Bus not_bus(const std::string& prefix, const Bus& a);
  Bus and_bus(const std::string& prefix, const Bus& a, const Bus& b);
  Bus or_bus(const std::string& prefix, const Bus& a, const Bus& b);
  Bus xor_bus(const std::string& prefix, const Bus& a, const Bus& b);
  /// AND of every bit with one enable signal.
  Bus gate_bus(const std::string& prefix, const Bus& a, netlist::NodeId en);

  /// 2:1 mux per bit: sel ? a : b.
  Bus mux2(const std::string& prefix, netlist::NodeId sel, const Bus& a,
           const Bus& b);
  /// 4:1 mux per bit, sel = {s1, s0}: 00 -> in0, 01 -> in1, 10 -> in2,
  /// 11 -> in3.
  Bus mux4(const std::string& prefix, netlist::NodeId s1, netlist::NodeId s0,
           const Bus& in0, const Bus& in1, const Bus& in2, const Bus& in3);

  struct AddResult {
    Bus sum;
    netlist::NodeId carry_out;
  };
  /// Ripple-carry adder; `cin` may be a constant node.
  AddResult adder(const std::string& prefix, const Bus& a, const Bus& b,
                  netlist::NodeId cin);
  /// a - b via a + ~b + 1; carry_out == 1 means no borrow (a >= b unsigned).
  AddResult subtractor(const std::string& prefix, const Bus& a, const Bus& b);
  /// a + 1 with carry in.
  AddResult incrementer(const std::string& prefix, const Bus& a,
                        netlist::NodeId cin);

  /// 1 when every bit of `a` is zero.
  netlist::NodeId is_zero(const std::string& name, const Bus& a);
  /// 1 when buses are equal.
  netlist::NodeId equals(const std::string& name, const Bus& a, const Bus& b);

  /// n-to-2^n one-hot decoder.
  Bus decoder(const std::string& prefix, const Bus& sel);

  netlist::NodeId const0(const std::string& name);
  netlist::NodeId const1(const std::string& name);

 private:
  netlist::CircuitBuilder& b_;
};

}  // namespace gatpg::gen
