// Am2910-style 12-bit microprogram sequencer (Table III "Am2910").
//
// Gate-level implementation of the classic AMD Am2910 architecture: a 12-bit
// microprogram counter (uPC = Y + CI), a 12-bit loop counter/register R, a
// five-deep 12-bit subroutine stack with a 3-bit stack pointer, and the
// 16-instruction branch-control decode (JZ, CJS, JMAP, CJP, PUSH, JSRP, CJV,
// JRP, RFCT, RPCT, CRTN, CJPP, LDCT, LOOP, CONT, TWB).
//
// Interface:
//   inputs : i[4] (instruction), d[12] (branch address / counter data),
//            cc_n (condition, active low), ccen_n (condition enable, active
//            low: high = force pass), rld_n (counter load, active low), ci
//            (carry into the uPC incrementer)
//   outputs: y[12] (next microprogram address), full_n, pl_n, map_n, vect_n
//
// JZ doubles as the synchronizing instruction (Y = 0, stack cleared), so the
// sequencer is initializable from the power-up all-X state without a
// dedicated reset.  Pushing onto a full stack holds SP and writes nothing
// (FULL_n is the designer's warning), popping an empty stack holds SP.
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace gatpg::gen {

netlist::Circuit make_am2910(std::string name = "am2910");

/// Instruction opcodes, for tests and examples.
enum class Am2910Op : unsigned {
  kJz = 0,
  kCjs = 1,
  kJmap = 2,
  kCjp = 3,
  kPush = 4,
  kJsrp = 5,
  kCjv = 6,
  kJrp = 7,
  kRfct = 8,
  kRpct = 9,
  kCrtn = 10,
  kCjpp = 11,
  kLdct = 12,
  kLoop = 13,
  kCont = 14,
  kTwb = 15,
};

}  // namespace gatpg::gen
