#include "gen/pcont.h"

#include <stdexcept>

#include "gen/datapath.h"

namespace gatpg::gen {

using netlist::NodeId;

netlist::Circuit make_pcont(unsigned channels, unsigned timer_bits,
                            std::string name) {
  if (channels < 2 || channels > 16 || timer_bits < 2 || timer_bits > 8) {
    throw std::invalid_argument("bad pcont parameters");
  }

  netlist::CircuitBuilder b;
  DatapathBuilder d(b);

  const NodeId reset = b.add_input("reset");
  const NodeId cfg = b.add_input("cfg");
  const Bus req = d.input_bus("req", channels);
  const Bus dur = d.input_bus("dur", timer_bits);
  const NodeId nreset = d.inv("nreset", reset);

  // Free-running prescaler: grant timing depends on *when* a grant happens,
  // which is what makes the controller's states deep (a required timer
  // value couples the configuration register with the prescaler phase —
  // trivial to reach by forward simulation, expensive to justify by reverse
  // time processing).
  const Bus prescaler = d.register_bus("psc", timer_bits + 2);
  {
    const auto inc =
        d.incrementer("psc_inc", prescaler, d.const1("psc_one"));
    d.connect_register(prescaler,
                       d.gate_bus("psc_n", inc.sum, nreset));
  }

  // Duration configuration register, written only under cfg.
  const Bus dur_reg = d.register_bus("drg", timer_bits);
  {
    const Bus next = d.mux2("drg_mx", cfg, dur, dur_reg);
    d.connect_register(dur_reg, d.gate_bus("drg_n", next, nreset));
  }

  // Timer load value: configured duration scrambled by the prescaler phase.
  Bus load_value(timer_bits);
  for (unsigned i = 0; i < timer_bits; ++i) {
    load_value[i] =
        d.xor2("ldv" + std::to_string(i), dur_reg[i], prescaler[i]);
  }

  Bus pend(channels), active(channels);
  std::vector<Bus> timer(channels);
  for (unsigned k = 0; k < channels; ++k) {
    pend[k] = b.add_dff("pend" + std::to_string(k));
    active[k] = b.add_dff("act" + std::to_string(k));
    timer[k] = d.register_bus("tmr" + std::to_string(k) + "_", timer_bits);
  }

  const NodeId any_active = d.orn("any_act", active);
  const NodeId free = d.inv("free", any_active);

  // Fixed-priority arbiter: channel k wins when pending, the resource is
  // free, and no lower-numbered channel is pending.
  Bus grant(channels);
  NodeId higher_pending = netlist::kNoNode;
  for (unsigned k = 0; k < channels; ++k) {
    const std::string n = "gr" + std::to_string(k);
    if (k == 0) {
      grant[k] = d.and2(n, pend[k], free);
      higher_pending = d.buf("hp0", pend[0]);
    } else {
      const NodeId ok =
          d.and2(n + "_ok", free, d.inv(n + "_nh", higher_pending));
      grant[k] = d.and2(n, pend[k], ok);
      higher_pending =
          d.or2("hp" + std::to_string(k), higher_pending, pend[k]);
    }
  }

  Bus ones(timer_bits);
  for (unsigned i = 0; i < timer_bits; ++i) {
    ones[i] = d.const1("tm1_" + std::to_string(i));
  }

  for (unsigned k = 0; k < channels; ++k) {
    const std::string n = "ch" + std::to_string(k);
    // pend' = !reset & (req | pend) & !grant
    const NodeId want = d.or2(n + "_want", req[k], pend[k]);
    const NodeId keep = d.and2(n + "_keep", want, d.inv(n + "_ng", grant[k]));
    b.set_dff_input(pend[k], d.and2(n + "_pn", keep, nreset));

    // Timer: grant loads the phase-scrambled duration, active counts down,
    // else hold.
    const NodeId tz = d.is_zero(n + "_tz", timer[k]);
    const auto dec = d.adder(n + "_dec", timer[k], ones,
                             d.const0(n + "_cin"));
    const Bus run = d.mux2(n + "_run", active[k], dec.sum, timer[k]);
    const Bus tnext = d.mux2(n + "_tn", grant[k], load_value, run);
    d.connect_register(timer[k], tnext);

    // active' = !reset & (grant | (active & timer != 0))
    const NodeId hold = d.and2(n + "_hold", active[k], d.inv(n + "_ntz", tz));
    const NodeId an = d.or2(n + "_an", grant[k], hold);
    b.set_dff_input(active[k], d.and2(n + "_actn", an, nreset));

    b.mark_output(d.buf("ack" + std::to_string(k), active[k]));
  }
  b.mark_output(d.buf("busy", any_active));
  b.mark_output(d.buf("phase", prescaler[timer_bits + 1]));

  return std::move(b).build(std::move(name));
}

}  // namespace gatpg::gen
