#include "gen/analogs.h"

#include "gen/datapath.h"
#include "gen/fsmgen.h"
#include "util/rng.h"

namespace gatpg::gen {

using netlist::GateType;
using netlist::NodeId;

netlist::Circuit make_analog(const AnalogSpec& spec) {
  netlist::CircuitBuilder b;
  DatapathBuilder d(b);
  util::Rng rng(spec.seed);

  const NodeId reset = b.add_input("reset");
  const Bus pis = d.input_bus("pi", spec.data_inputs);

  // Signal pool: any already-created node is fair game for later blocks,
  // which keeps the construction acyclic by definition.
  std::vector<NodeId> pool(pis.begin(), pis.end());
  auto pick = [&]() { return pool[rng.below(pool.size())]; };

  // FSM blocks.
  unsigned block = 0;
  for (const auto& fb : spec.fsms) {
    FsmSpec fs;
    fs.num_states = fb.states;
    fs.num_inputs = fb.inputs;
    fs.num_outputs = 2;
    fs.seed = rng.word();
    std::vector<NodeId> ins(fs.num_inputs);
    for (auto& in : ins) in = pick();
    const auto outs = emit_moore_fsm(b, "m" + std::to_string(block) + "_",
                                     fs, ins, reset);
    pool.insert(pool.end(), outs.begin(), outs.end());
    ++block;
  }

  // Counters: cnt' = !reset & (en ? cnt+1 : cnt).
  const NodeId nreset = d.inv("nrst_c", reset);
  unsigned ci = 0;
  for (unsigned width : spec.counters) {
    const std::string p = "c" + std::to_string(ci++) + "_";
    const Bus cnt = d.register_bus(p, width);
    const NodeId en = pick();
    const auto inc = d.incrementer(p + "inc", cnt, d.const1(p + "one"));
    const Bus stepped = d.mux2(p + "mx", en, inc.sum, cnt);
    d.connect_register(cnt, d.gate_bus(p + "nx", stepped, nreset));
    pool.insert(pool.end(), cnt.begin(), cnt.end());
    pool.push_back(inc.carry_out);
  }

  // Shift registers: serial-in from the pool, no reset (they flush X out
  // naturally, like the scan-path-free pipelines in the s6xx circuits).
  unsigned si = 0;
  for (unsigned width : spec.shifts) {
    const std::string p = "s" + std::to_string(si++) + "_";
    const Bus sh = d.register_bus(p, width);
    b.set_dff_input(sh[0], pick());
    for (unsigned k = 1; k < width; ++k) b.set_dff_input(sh[k], sh[k - 1]);
    pool.insert(pool.end(), sh.begin(), sh.end());
  }

  // Random glue gates.
  static constexpr GateType kGlueTypes[] = {
      GateType::kAnd, GateType::kOr,  GateType::kNand,
      GateType::kNor, GateType::kXor, GateType::kXnor,
  };
  for (unsigned g = 0; g < spec.glue_gates; ++g) {
    const GateType t = kGlueTypes[rng.below(std::size(kGlueTypes))];
    const std::size_t arity = 2 + rng.below(2);  // 2 or 3 inputs
    std::vector<NodeId> ins(arity);
    for (auto& in : ins) in = pick();
    pool.push_back(b.add_gate(t, "g" + std::to_string(g), ins));
  }

  // Outputs: XOR-mix of pool signals so deep state is observable.
  for (unsigned o = 0; o < spec.outputs; ++o) {
    const NodeId a = pick();
    const NodeId bn = pick();
    b.mark_output(d.xor2("po" + std::to_string(o), a, bn));
  }

  return std::move(b).build(spec.name);
}

const std::vector<AnalogSpec>& analog_suite() {
  static const std::vector<AnalogSpec> kSuite = [] {
    std::vector<AnalogSpec> v;
    // Control-dominant profiles (traffic-light / PLD controllers).
    v.push_back({"g298", 3, 6,
                 {{8, 2}, {8, 2}},
                 {8},
                 {},
                 24,
                 298});
    v.push_back({"g382", 3, 6,
                 {{4, 2}, {4, 2}, {4, 2}},
                 {6, 6},
                 {},
                 40,
                 382});
    v.push_back({"g386", 4, 7, {{13, 3}}, {}, {}, 16, 386});
    v.push_back({"g400", 3, 6,
                 {{4, 2}, {4, 2}, {4, 2}},
                 {6, 6},
                 {},
                 56,
                 400});
    v.push_back({"g444", 3, 6,
                 {{4, 2}, {4, 2}, {4, 2}},
                 {6, 6},
                 {},
                 72,
                 444});
    v.push_back({"g526", 3, 6,
                 {{8, 2}, {8, 2}},
                 {7, 8},
                 {},
                 64,
                 526});
    v.push_back({"g641", 16, 10, {}, {4}, {8, 7}, 160, 641});
    v.push_back({"g713", 16, 10, {}, {4}, {8, 7}, 224, 713});
    v.push_back({"g820", 8, 10, {{24, 3}}, {}, {}, 48, 820});
    v.push_back({"g832", 8, 10, {{24, 3}}, {}, {}, 64, 832});
    v.push_back({"g1196", 12, 14, {}, {}, {6, 6, 6}, 420, 1196});
    v.push_back({"g1238", 12, 14, {}, {}, {6, 6, 6}, 470, 1238});
    v.push_back({"g1423", 12, 5,
                 {{8, 2}, {8, 2}},
                 {16, 16, 12},
                 {12},
                 240,
                 1423});
    v.push_back({"g1488", 6, 12, {{48, 3}}, {}, {}, 64, 1488});
    v.push_back({"g1494", 6, 12, {{48, 3}}, {}, {}, 80, 1494});
    v.push_back({"g5378", 24, 24,
                 {{16, 3}, {16, 3}, {8, 2}, {8, 2}, {8, 2}},
                 {16, 16, 12, 12},
                 {16, 16, 12},
                 700,
                 5378});
    return v;
  }();
  return kSuite;
}

}  // namespace gatpg::gen
