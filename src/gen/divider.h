// Sequential divider by repeated subtraction ("div" in Table III).
//
// The paper's div circuit is a 16-bit divider "which uses repeated
// subtraction to perform division": while the remainder is at least the
// divisor, subtract and count.  A divide of a/b therefore takes floor(a/b)
// working cycles — slow as arithmetic, but exactly the deep, data-dominant
// sequential behaviour that makes the circuit a hard ATPG target.
//
// Interface (all active high):
//   inputs : reset, start, a[W] (dividend), b[W] (divisor)
//   outputs: q[W] (quotient), r[W] (remainder), done
//
// A b == 0 divide terminates immediately (q = 0, r = a).
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace gatpg::gen {

netlist::Circuit make_divider(unsigned width, std::string name = "");

}  // namespace gatpg::gen
