#include "gen/fsmgen.h"

#include <stdexcept>

#include "gen/datapath.h"
#include "util/rng.h"

namespace gatpg::gen {

using netlist::GateType;
using netlist::NodeId;

namespace {

unsigned bits_for(unsigned n) {
  unsigned bits = 1;
  while ((1u << bits) < n) ++bits;
  return bits;
}

}  // namespace

FsmTables fsm_tables(const FsmSpec& spec) {
  util::Rng rng(spec.seed);
  FsmTables t;
  const unsigned input_values = 1u << spec.num_inputs;
  t.next_state.assign(spec.num_states,
                      std::vector<unsigned>(input_values, 0));
  t.outputs.assign(spec.num_states,
                   std::vector<bool>(spec.num_outputs, false));
  for (unsigned s = 0; s < spec.num_states; ++s) {
    for (unsigned iv = 0; iv < input_values; ++iv) {
      t.next_state[s][iv] =
          static_cast<unsigned>(rng.below(spec.num_states));
    }
    for (unsigned k = 0; k < spec.num_outputs; ++k) {
      t.outputs[s][k] = rng.bit();
    }
  }
  return t;
}

std::vector<NodeId> emit_moore_fsm(netlist::CircuitBuilder& b,
                                   const std::string& prefix,
                                   const FsmSpec& spec,
                                   const std::vector<NodeId>& inputs,
                                   NodeId reset) {
  if (spec.num_states < 2 || spec.num_states > 64 || spec.num_inputs < 1 ||
      spec.num_inputs > 5 || spec.num_outputs < 1 ||
      inputs.size() != spec.num_inputs) {
    throw std::invalid_argument("bad FsmSpec");
  }
  const FsmTables tables = fsm_tables(spec);
  const unsigned state_bits = bits_for(spec.num_states);
  const unsigned input_values = 1u << spec.num_inputs;

  DatapathBuilder d(b);
  const Bus state = d.register_bus(prefix + "st", state_bits);
  const Bus state_onehot = d.decoder(prefix + "sd", state);
  const Bus input_onehot = d.decoder(prefix + "id", inputs);

  // Minterms over (state, input value).  Unused state codes never decode in
  // operation but still produce gates (as PLD synthesis would).
  std::vector<Bus> minterm(spec.num_states, Bus(input_values));
  for (unsigned s = 0; s < spec.num_states; ++s) {
    for (unsigned iv = 0; iv < input_values; ++iv) {
      minterm[s][iv] =
          d.and2(prefix + "mt" + std::to_string(s) + "_" + std::to_string(iv),
                 state_onehot[s], input_onehot[iv]);
    }
  }

  // Next-state bit j = NOT(reset) AND OR(minterms whose successor sets j).
  const NodeId nreset = d.inv(prefix + "nrst", reset);
  for (unsigned j = 0; j < state_bits; ++j) {
    Bus terms;
    for (unsigned s = 0; s < spec.num_states; ++s) {
      for (unsigned iv = 0; iv < input_values; ++iv) {
        if ((tables.next_state[s][iv] >> j) & 1) {
          terms.push_back(minterm[s][iv]);
        }
      }
    }
    NodeId sop;
    if (terms.empty()) {
      sop = d.const0(prefix + "ns" + std::to_string(j) + "_z");
    } else {
      sop = d.orn(prefix + "ns" + std::to_string(j) + "_or", terms);
    }
    const NodeId next = d.and2(prefix + "ns" + std::to_string(j), sop, nreset);
    b.set_dff_input(state[j], next);
  }

  // Moore outputs.
  std::vector<NodeId> outs(spec.num_outputs);
  for (unsigned k = 0; k < spec.num_outputs; ++k) {
    Bus terms;
    for (unsigned s = 0; s < spec.num_states; ++s) {
      if (tables.outputs[s][k]) terms.push_back(state_onehot[s]);
    }
    if (terms.empty()) {
      outs[k] = d.const0(prefix + "out" + std::to_string(k));
    } else {
      outs[k] = d.orn(prefix + "out" + std::to_string(k), terms);
    }
  }
  return outs;
}

netlist::Circuit make_moore_fsm(const FsmSpec& spec) {
  netlist::CircuitBuilder b;
  DatapathBuilder d(b);
  const NodeId reset = b.add_input("reset");
  const Bus in = d.input_bus("in", spec.num_inputs);
  const auto outs = emit_moore_fsm(b, "", spec, in, reset);
  for (NodeId o : outs) b.mark_output(o);
  return std::move(b).build(spec.name);
}

}  // namespace gatpg::gen
