// Eight-channel parallel controller ("pcont2" in Table III).
//
// The paper describes pcont2 only as "an 8-bit parallel controller used in
// DSP applications"; this generator implements the canonical architecture
// that description suggests: eight request/grant channels sharing one
// resource.  Each channel latches its request, a fixed-priority arbiter
// grants one channel at a time, and a per-channel down-counter holds the
// grant.  The grant duration is *history-dependent*: a configuration
// register (written only under cfg) XOR-scrambled with a free-running
// prescaler supplies the timer load, so the per-channel timer states couple
// with the prescaler phase.  Reaching a specific timer state is easy by
// forward simulation but needs a long coherent history for reverse-time
// justification — the data-dominant character that makes the paper's pcont2
// the hybrid's most dramatic win.
//
// Interface:
//   inputs : reset, cfg, req[8], dur[4]
//   outputs: ack[8] (grant held while the timer runs), busy, phase
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace gatpg::gen {

netlist::Circuit make_pcont(unsigned channels = 8, unsigned timer_bits = 4,
                            std::string name = "pcont2");

}  // namespace gatpg::gen
