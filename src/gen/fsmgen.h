// Synthesized Moore finite-state machines.
//
// Generates a random (seeded, reproducible) Moore machine and synthesizes it
// to two-level AND-OR logic over one-hot decoded state and input minterms —
// the same structural style as the PLD-derived ISCAS89 control circuits
// (s386, s820/s832, s1488/s1494).  A synchronous reset input forces state 0,
// guaranteeing the machine is initializable from the power-up all-X state
// (ISCAS89 controllers achieve this through synchronizing sequences; a reset
// pin is the structural equivalent for generated machines — see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.h"

namespace gatpg::gen {

struct FsmSpec {
  std::string name = "fsm";
  unsigned num_states = 8;   // 2..64
  unsigned num_inputs = 2;   // data inputs, 1..5 (reset is added on top)
  unsigned num_outputs = 4;  // Moore outputs
  std::uint64_t seed = 1;
};

netlist::Circuit make_moore_fsm(const FsmSpec& spec);

/// Emits the FSM into an existing builder (used by the composite analog
/// circuits): `inputs` supplies the data inputs (size == spec.num_inputs),
/// `reset` the synchronous reset.  Gate names are prefixed.  Returns the
/// Moore output nodes.
std::vector<netlist::NodeId> emit_moore_fsm(netlist::CircuitBuilder& b,
                                            const std::string& prefix,
                                            const FsmSpec& spec,
                                            const std::vector<netlist::NodeId>& inputs,
                                            netlist::NodeId reset);

/// The transition/output tables behind a generated FSM, for functional
/// tests: next_state[s][input_value], output_bit[s][k].
struct FsmTables {
  std::vector<std::vector<unsigned>> next_state;
  std::vector<std::vector<bool>> outputs;
};

FsmTables fsm_tables(const FsmSpec& spec);

}  // namespace gatpg::gen
