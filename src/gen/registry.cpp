#include "gen/registry.h"

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <stdexcept>

#include "gen/am2910.h"
#include "gen/analogs.h"
#include "gen/divider.h"
#include "gen/fsmgen.h"
#include "gen/multiplier.h"
#include "gen/pcont.h"
#include "gen/s27.h"
#include "netlist/bench_io.h"

namespace gatpg::gen {

namespace {

std::string data_dir() {
  if (const char* env = std::getenv("GATPG_DATA")) return env;
  return "data";
}

std::string bench_path(const std::string& name) {
  return data_dir() + "/" + name + ".bench";
}

using Factory = std::function<netlist::Circuit()>;

const std::map<std::string, Factory>& factories() {
  static const std::map<std::string, Factory> kFactories = [] {
    std::map<std::string, Factory> m;
    m.emplace("s27", [] { return make_s27(); });
    for (const AnalogSpec& spec : analog_suite()) {
      m.emplace(spec.name, [&spec] { return make_analog(spec); });
    }
    // Datapath stand-ins for the multiplier-control pair s344/s349.
    m.emplace("g344", [] { return make_multiplier(4, "g344"); });
    m.emplace("g349", [] { return make_divider(4, "g349"); });
    // Table III synthesized circuits.
    m.emplace("am2910", [] { return make_am2910(); });
    m.emplace("div16", [] { return make_divider(16, "div16"); });
    m.emplace("mult16", [] { return make_multiplier(16, "mult16"); });
    m.emplace("pcont2", [] { return make_pcont(8, 4, "pcont2"); });
    // Small exhaustively-testable instances for tests/examples.
    m.emplace("mult4", [] { return make_multiplier(4, "mult4"); });
    m.emplace("div4", [] { return make_divider(4, "div4"); });
    return m;
  }();
  return kFactories;
}

}  // namespace

std::vector<std::string> registry_names() {
  std::vector<std::string> names;
  names.reserve(factories().size());
  for (const auto& [name, factory] : factories()) names.push_back(name);
  return names;
}

bool resolves_to_file(const std::string& name) {
  std::error_code ec;
  return std::filesystem::exists(bench_path(name), ec);
}

netlist::Circuit make_circuit(const std::string& name) {
  if (resolves_to_file(name)) {
    return netlist::load_bench_file(bench_path(name));
  }
  auto it = factories().find(name);
  if (it == factories().end()) {
    throw std::out_of_range("unknown circuit: " + name);
  }
  return it->second();
}

}  // namespace gatpg::gen
