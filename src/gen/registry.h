// Circuit registry: every evaluation circuit by name.
//
// Resolution order for a name like "s298"/"g298":
//   1. a real .bench file <name>.bench in the data directory (environment
//      variable GATPG_DATA, else ./data) — lets users run the genuine
//      ISCAS89 netlists when they have them;
//   2. the built-in generator (embedded s27, analog suite, synthesized
//      Table III circuits).
// Unknown names throw std::out_of_range.
#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.h"

namespace gatpg::gen {

/// All built-in circuit names (s27, g298..g5378, g344/g349 datapath
/// stand-ins, am2910, div16, mult16, pcont2 and the small mult4/div4).
std::vector<std::string> registry_names();

/// Builds (or loads, see resolution order above) a circuit by name.
netlist::Circuit make_circuit(const std::string& name);

/// True when `name` resolves to a real .bench file rather than a generator.
bool resolves_to_file(const std::string& name);

}  // namespace gatpg::gen
