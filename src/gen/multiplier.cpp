#include "gen/multiplier.h"

#include <stdexcept>

#include "gen/datapath.h"

namespace gatpg::gen {

using netlist::NodeId;

netlist::Circuit make_multiplier(unsigned width, std::string name) {
  if (width < 2 || width > 32) {
    throw std::invalid_argument("multiplier width out of range");
  }
  if (name.empty()) name = "mult" + std::to_string(width);

  netlist::CircuitBuilder b;
  DatapathBuilder d(b);

  // reset gives the controller a synchronizing input (the datapath defines
  // itself on load); without it the busy flag could never leave X from the
  // power-up unknown state.
  const NodeId reset = b.add_input("reset");
  const NodeId start = b.add_input("start");
  const Bus a_in = d.input_bus("a", width);
  const Bus b_in = d.input_bus("b", width);

  // State: multiplicand M, accumulator A (width+1 bits for Booth headroom),
  // multiplier/low-product Q, Booth bit q_prev, cycle counter, busy flag.
  unsigned cnt_bits = 1;
  while ((1u << cnt_bits) < width) ++cnt_bits;
  const Bus m = d.register_bus("m", width);
  const Bus acc = d.register_bus("acc", width + 1);
  const Bus q = d.register_bus("q", width);
  const NodeId q_prev = b.add_dff("qprev");
  const Bus count = d.register_bus("cnt", cnt_bits);
  const NodeId busy = b.add_dff("busy");

  const NodeId idle = d.inv("idle", busy);
  const NodeId load = d.and2("load", start, idle);
  const NodeId nload = d.inv("nload", load);

  // Booth recoding of (Q0, q_prev): 01 -> add M, 10 -> subtract M.
  const NodeId nq0 = d.inv("nq0", q[0]);
  const NodeId nqp = d.inv("nqp", q_prev);
  const NodeId add_en = d.and2("add_en", nq0, q_prev);
  const NodeId sub_en = d.and2("sub_en", q[0], nqp);
  const NodeId op_en = d.or2("op_en", add_en, sub_en);

  // Sign-extended operand, gated by op_en and complemented for subtract.
  Bus m_ext = m;
  m_ext.push_back(m[width - 1]);  // sign extension to width+1
  Bus operand(width + 1);
  for (unsigned i = 0; i <= width; ++i) {
    const std::string n = "opd" + std::to_string(i);
    const NodeId gated = d.and2(n + "_g", m_ext[i], op_en);
    operand[i] = d.xor2(n, gated, sub_en);
  }
  const auto sum = d.adder("badd", acc, operand, sub_en);

  // Arithmetic right shift of {sum, Q}.
  Bus acc_shifted(width + 1);
  for (unsigned i = 0; i < width; ++i) acc_shifted[i] = sum.sum[i + 1];
  acc_shifted[width] = sum.sum[width];  // keep sign
  Bus q_shifted(width);
  for (unsigned i = 0; i + 1 < width; ++i) q_shifted[i] = q[i + 1];
  q_shifted[width - 1] = sum.sum[0];

  // Counter and completion.
  const auto count_inc = d.incrementer("cinc", count, d.const1("cone"));
  Bus last_terms(cnt_bits);
  for (unsigned i = 0; i < cnt_bits; ++i) {
    const bool bit = ((width - 1) >> i) & 1;
    last_terms[i] = bit ? count[i] : d.inv("lt" + std::to_string(i), count[i]);
  }
  const NodeId last = d.andn("last", last_terms);
  const NodeId step = d.and2("step", busy, d.inv("nlast", last));

  // busy' = NOT reset AND (load OR (busy AND NOT last))
  const NodeId nreset = d.inv("nreset", reset);
  b.set_dff_input(busy,
                  d.and2("busy_n", d.or2("busy_o", load, step), nreset));

  // count' = load ? 0 : busy ? count+1 : count
  {
    const Bus held = d.mux2("cnt_h", busy, count_inc.sum, count);
    const Bus next = d.gate_bus("cnt_n", held, nload);
    d.connect_register(count, next);
  }
  // M' = load ? a_in : M
  d.connect_register(m, d.mux2("m_n", load, a_in, m));
  // A' = load ? 0 : busy ? shifted : A
  {
    const Bus held = d.mux2("acc_h", busy, acc_shifted, acc);
    d.connect_register(acc, d.gate_bus("acc_n", held, nload));
  }
  // Q' = load ? b_in : busy ? shifted : Q
  {
    const Bus held = d.mux2("q_h", busy, q_shifted, q);
    d.connect_register(q, d.mux2("q_n", load, b_in, held));
  }
  // q_prev' = load ? 0 : busy ? Q0 : q_prev
  {
    const NodeId held =
        d.or2("qp_h", d.and2("qp_a", busy, q[0]),
              d.and2("qp_b", d.inv("qp_nb", busy), q_prev));
    b.set_dff_input(q_prev, d.and2("qp_n", held, nload));
  }

  // Outputs: product = {A[width-1:0], Q}, plus done.
  for (unsigned i = 0; i < width; ++i) {
    b.mark_output(d.buf("p" + std::to_string(i), q[i]));
  }
  for (unsigned i = 0; i < width; ++i) {
    b.mark_output(d.buf("p" + std::to_string(width + i), acc[i]));
  }
  b.mark_output(d.inv("done", busy));

  return std::move(b).build(std::move(name));
}

}  // namespace gatpg::gen
