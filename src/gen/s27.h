// The ISCAS89 benchmark circuit s27, embedded verbatim.
//
// s27 is small enough to ship inline (4 PIs, 3 DFFs, 10 gates) and serves as
// the one exact ISCAS89 reference in the suite; the larger benchmarks are
// represented by generated analogs (see analogs.h) unless real .bench files
// are provided in the data directory (see registry.h).
#pragma once

#include "netlist/circuit.h"

namespace gatpg::gen {

netlist::Circuit make_s27();

/// The raw .bench text (also used by the parser round-trip tests).
const char* s27_bench_text();

}  // namespace gatpg::gen
