#include "gen/datapath.h"

#include <cassert>
#include <stdexcept>

namespace gatpg::gen {

using netlist::GateType;
using netlist::NodeId;

NodeId DatapathBuilder::buf(const std::string& name, NodeId a) {
  return b_.add_gate(GateType::kBuf, name, {a});
}

NodeId DatapathBuilder::inv(const std::string& name, NodeId a) {
  return b_.add_gate(GateType::kNot, name, {a});
}

NodeId DatapathBuilder::and2(const std::string& name, NodeId a, NodeId b) {
  return b_.add_gate(GateType::kAnd, name, {a, b});
}

NodeId DatapathBuilder::or2(const std::string& name, NodeId a, NodeId b) {
  return b_.add_gate(GateType::kOr, name, {a, b});
}

NodeId DatapathBuilder::xor2(const std::string& name, NodeId a, NodeId b) {
  return b_.add_gate(GateType::kXor, name, {a, b});
}

NodeId DatapathBuilder::andn(const std::string& name, const Bus& ins) {
  assert(!ins.empty());
  return b_.add_gate(GateType::kAnd, name,
                     std::span<const NodeId>(ins.data(), ins.size()));
}

NodeId DatapathBuilder::orn(const std::string& name, const Bus& ins) {
  assert(!ins.empty());
  return b_.add_gate(GateType::kOr, name,
                     std::span<const NodeId>(ins.data(), ins.size()));
}

Bus DatapathBuilder::input_bus(const std::string& prefix, std::size_t width) {
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus[i] = b_.add_input(prefix + std::to_string(i));
  }
  return bus;
}

Bus DatapathBuilder::register_bus(const std::string& prefix,
                                  std::size_t width) {
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus[i] = b_.add_dff(prefix + std::to_string(i));
  }
  return bus;
}

void DatapathBuilder::connect_register(const Bus& q, const Bus& d) {
  if (q.size() != d.size()) {
    throw std::invalid_argument("connect_register width mismatch");
  }
  for (std::size_t i = 0; i < q.size(); ++i) b_.set_dff_input(q[i], d[i]);
}

void DatapathBuilder::output_bus(const Bus& bus) {
  for (NodeId n : bus) b_.mark_output(n);
}

Bus DatapathBuilder::not_bus(const std::string& prefix, const Bus& a) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = inv(prefix + std::to_string(i), a[i]);
  }
  return out;
}

Bus DatapathBuilder::and_bus(const std::string& prefix, const Bus& a,
                             const Bus& b) {
  assert(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = and2(prefix + std::to_string(i), a[i], b[i]);
  }
  return out;
}

Bus DatapathBuilder::or_bus(const std::string& prefix, const Bus& a,
                            const Bus& b) {
  assert(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = or2(prefix + std::to_string(i), a[i], b[i]);
  }
  return out;
}

Bus DatapathBuilder::xor_bus(const std::string& prefix, const Bus& a,
                             const Bus& b) {
  assert(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = xor2(prefix + std::to_string(i), a[i], b[i]);
  }
  return out;
}

Bus DatapathBuilder::gate_bus(const std::string& prefix, const Bus& a,
                              NodeId en) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = and2(prefix + std::to_string(i), a[i], en);
  }
  return out;
}

Bus DatapathBuilder::mux2(const std::string& prefix, NodeId sel, const Bus& a,
                          const Bus& b) {
  assert(a.size() == b.size());
  const NodeId nsel = inv(prefix + "_ns", sel);
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string n = prefix + std::to_string(i);
    const NodeId ta = and2(n + "_a", a[i], sel);
    const NodeId tb = and2(n + "_b", b[i], nsel);
    out[i] = or2(n, ta, tb);
  }
  return out;
}

Bus DatapathBuilder::mux4(const std::string& prefix, NodeId s1, NodeId s0,
                          const Bus& in0, const Bus& in1, const Bus& in2,
                          const Bus& in3) {
  const Bus lo = mux2(prefix + "_lo", s0, in1, in0);  // s0 ? in1 : in0
  const Bus hi = mux2(prefix + "_hi", s0, in3, in2);  // s0 ? in3 : in2
  return mux2(prefix + "_m", s1, hi, lo);             // s1 ? hi : lo
}

DatapathBuilder::AddResult DatapathBuilder::adder(const std::string& prefix,
                                                  const Bus& a, const Bus& b,
                                                  NodeId cin) {
  assert(a.size() == b.size());
  AddResult r;
  r.sum.resize(a.size());
  NodeId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string n = prefix + std::to_string(i);
    const NodeId axb = xor2(n + "_x", a[i], b[i]);
    r.sum[i] = xor2(n, axb, carry);
    const NodeId t1 = and2(n + "_c1", a[i], b[i]);
    const NodeId t2 = and2(n + "_c2", axb, carry);
    carry = or2(n + "_c", t1, t2);
  }
  r.carry_out = carry;
  return r;
}

DatapathBuilder::AddResult DatapathBuilder::subtractor(
    const std::string& prefix, const Bus& a, const Bus& b) {
  const Bus nb = not_bus(prefix + "_nb", b);
  return adder(prefix, a, nb, const1(prefix + "_one"));
}

DatapathBuilder::AddResult DatapathBuilder::incrementer(
    const std::string& prefix, const Bus& a, NodeId cin) {
  AddResult r;
  r.sum.resize(a.size());
  NodeId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string n = prefix + std::to_string(i);
    r.sum[i] = xor2(n, a[i], carry);
    carry = and2(n + "_c", a[i], carry);
  }
  r.carry_out = carry;
  return r;
}

NodeId DatapathBuilder::is_zero(const std::string& name, const Bus& a) {
  return b_.add_gate(GateType::kNor, name,
                     std::span<const NodeId>(a.data(), a.size()));
}

NodeId DatapathBuilder::equals(const std::string& name, const Bus& a,
                               const Bus& b) {
  const Bus diff = xor_bus(name + "_d", a, b);
  return is_zero(name, diff);
}

Bus DatapathBuilder::decoder(const std::string& prefix, const Bus& sel) {
  const Bus nsel = not_bus(prefix + "_n", sel);
  const std::size_t n = sel.size();
  const std::size_t count = std::size_t{1} << n;
  Bus out(count);
  for (std::size_t v = 0; v < count; ++v) {
    Bus terms(n);
    for (std::size_t bit = 0; bit < n; ++bit) {
      terms[bit] = (v >> bit) & 1 ? sel[bit] : nsel[bit];
    }
    out[v] = andn(prefix + std::to_string(v), terms);
  }
  return out;
}

NodeId DatapathBuilder::const0(const std::string& name) {
  return b_.add_const(false, name);
}

NodeId DatapathBuilder::const1(const std::string& name) {
  return b_.add_const(true, name);
}

}  // namespace gatpg::gen
