// Sequential two's-complement multiplier ("mult" in Table III).
//
// Shift-and-add architecture using radix-2 Booth recoding, which handles
// two's-complement operands directly: each cycle inspects (Q0, q_prev) to
// add, subtract, or pass the multiplicand into the accumulator, then
// arithmetically shifts the {A, Q} pair right.  A W-bit multiply takes W
// working cycles after the start cycle.
//
// Interface (all active high):
//   inputs : start, a[W] (multiplicand), b[W] (multiplier)
//   outputs: p[2W] (product, valid when done), done
//
// The paper's circuit is 16-bit; the width is a parameter so a 4-bit
// instance can stand in for the small ISCAS89 multiplier-control circuits
// (s344/s349 analogs) and tests can verify the arithmetic exhaustively.
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace gatpg::gen {

netlist::Circuit make_multiplier(unsigned width, std::string name = "");

}  // namespace gatpg::gen
