// Pass schedules moved to the shared session layer (session/pass.h); this
// forwarding header keeps the historical gatpg::hybrid spellings working.
#pragma once

#include "session/pass.h"

namespace gatpg::hybrid {

using session::JustifyMode;
using session::PassConfig;
using session::PassSchedule;

}  // namespace gatpg::hybrid
