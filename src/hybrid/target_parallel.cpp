// Speculative parallel fault targeting with in-order commit (DESIGN.md §4j).
//
// The committer (the thread that called run) walks the pass's ascending
// fault scan exactly like the serial loop, but faults ahead of the committed
// frontier are solved speculatively on lanes, each against an immutable
// snapshot of the committed state (RNG stream position, good machine, store
// content) taken at the current *epoch*.  Epochs advance only when committed
// state actually mutates — an RNG draw, a committed test, or a store content
// change; state-neutral targets (aborted, proven untestable, GA failures
// without near-miss inserts) leave the epoch alone, so speculation past them
// commits wholesale.  A lane result is adopted iff its launch epoch is still
// current — its inputs then equal what the serial run would have used, so
// its outputs are the serial outputs.  On a mismatch the result is discarded
// and the fault is recomputed inline through the exact serial path.  Either
// way every observable — counters, store, tests, digests, observer order —
// is bit-identical to the serial run at any lane count.
#include "hybrid/hybrid_atpg.h"

#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace gatpg::hybrid {

namespace {

using session::FaultStatus;

/// Immutable image of the committed state at one epoch.  Lanes only read it
/// (the cancel flag is the sole post-construction write, by the committer).
struct EpochSnapshot {
  std::uint64_t epoch = 0;
  std::array<std::uint64_t, 4> rng_words{};
  std::unique_ptr<sim::SequenceSimulator> good;
  sim::State3 good_state;
  std::unique_ptr<state::StateStore> store;
  std::uint64_t store_revision = 0;
  state::StateStoreStats store_stats;
  std::atomic<bool> cancelled{false};
};

/// What a lane hands back to the committer.  Lives behind a shared_ptr
/// because ThreadPool::submit takes a copyable std::function.
struct SpecResult {
  TargetResult tr;
  session::EngineCounters counters;  // lane-local deltas
  std::array<std::uint64_t, 4> rng_words{};
  bool rng_consumed = false;
  std::unique_ptr<state::StateStore> store;  // the lane's clone, post-solve
  std::uint64_t store_end_revision = 0;
  std::uint64_t pool_acquires = 0;
  std::size_t pool_peak = 0;
};

struct SpecTask {
  std::size_t fault_index = 0;
  std::shared_ptr<EpochSnapshot> snap;
  std::shared_ptr<SpecResult> result;
  std::future<void> done;
};

/// Lane-local FrameModelPools, recycled across tasks.  The ThreadPool does
/// not pin tasks to threads, so pools are checked out per task, not per
/// thread; at most `window` exist at once.
class LanePools {
 public:
  explicit LanePools(const netlist::Circuit& c) : c_(c) {}

  std::unique_ptr<atpg::FrameModelPool> acquire() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<atpg::FrameModelPool> pool = std::move(free_.back());
        free_.pop_back();
        return pool;
      }
    }
    return std::make_unique<atpg::FrameModelPool>(c_);
  }

  void release(std::unique_ptr<atpg::FrameModelPool> pool) {
    const std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(pool));
  }

 private:
  const netlist::Circuit& c_;
  std::mutex mu_;
  std::vector<std::unique_ptr<atpg::FrameModelPool>> free_;
};

}  // namespace

void HybridEngine::run_speculative(session::Session& s, const PassConfig& pass,
                                   const util::Deadline& pass_deadline,
                                   unsigned lanes) {
  session::FaultManager& fm = s.faults();
  const unsigned window = s.config().target_parallel.resolved_window();
  if (!lane_pool_) lane_pool_ = std::make_unique<util::ThreadPool>();
  lane_pool_->ensure_workers(lanes);

  LanePools pools(c_);

  std::uint64_t epoch = 0;
  auto make_snapshot = [&]() {
    auto snap = std::make_shared<EpochSnapshot>();
    snap->epoch = epoch;
    snap->rng_words = rng_.state_words();
    snap->good = std::make_unique<sim::SequenceSimulator>(
        s.simulator().good_machine());
    snap->good_state = s.simulator().good_state();
    snap->store = s.state_store().clone();
    snap->store_revision = s.state_store().revision();
    snap->store_stats = s.state_store().stats();
    return snap;
  };
  std::shared_ptr<EpochSnapshot> snap = make_snapshot();

  std::deque<SpecTask> inflight;
  std::vector<SpecTask> zombies;  // superseded tasks awaiting completion
  std::size_t next_spec = fm.pass_cursor();

  auto account_discarded = [&](const SpecTask& t) {
    ++spec_stats_.discarded;
    spec_stats_.wasted_gate_evals += t.result->counters.det_gate_evals;
  };

  auto launch = [&](std::size_t j) {
    SpecTask t;
    t.fault_index = j;
    t.snap = snap;
    t.result = std::make_shared<SpecResult>();
    // Captured on the committer thread between commits, so both carry the
    // current epoch's values even though they live outside the snapshot.
    const fault::Fault f = fm.fault(j);
    const sim::State3 faulty_state = s.simulator().fault_state(j);
    const sim::V3 launch_prev = s.simulator().launch_prev(j);
    const std::shared_ptr<EpochSnapshot> snap_ref = snap;
    const std::shared_ptr<SpecResult> result = t.result;
    LanePools* lane_pools = &pools;
    const PassConfig* pass_ptr = &pass;
    t.done = lane_pool_->submit([this, j, f, faulty_state, launch_prev,
                                 snap_ref, result, lane_pools, pass_ptr]() {
      std::unique_ptr<atpg::FrameModelPool> pool = lane_pools->acquire();
      util::Rng rng;
      rng.set_state_words(snap_ref->rng_words);
      std::unique_ptr<state::StateStore> store = snap_ref->store->clone();
      const util::Deadline deadline =
          util::Deadline::cancelled_by(&snap_ref->cancelled);

      TargetFacilities fx;
      fx.rng = &rng;
      fx.counters = &result->counters;
      fx.store = store.get();
      fx.pool = pool.get();
      fx.good_machine = snap_ref->good.get();
      fx.good_state = snap_ref->good_state;
      fx.faulty_state = faulty_state;
      fx.launch_prev = launch_prev;
      fx.deadline = &deadline;
      fx.ga_parallel.threads = 1;  // the lane itself is the parallelism

      pool->begin_peak_window();
      const std::uint64_t acquires_before = pool->acquires();
      result->tr = solve_target(f, j, *pass_ptr, fx);
      result->pool_acquires = pool->acquires() - acquires_before;
      result->pool_peak = pool->peak_outstanding();
      result->rng_words = rng.state_words();
      result->rng_consumed = result->rng_words != snap_ref->rng_words;
      result->store_end_revision = store->revision();
      result->store = std::move(store);
      lane_pools->release(std::move(pool));
    });
    ++spec_stats_.speculated;
    inflight.push_back(std::move(t));
  };

  auto top_up = [&](std::size_t frontier) {
    if (next_spec < frontier) next_spec = frontier;
    while (inflight.size() < window && next_spec < fm.size()) {
      const std::size_t j = next_spec++;
      // Eligibility is epoch-invariant: statuses and the drop list only
      // change at commits (which bump the epoch and clear the window) or
      // when a fault resolves itself, so a launched task's fault is still
      // an undetected target when the scan reaches it.
      if (fm.status(j) != FaultStatus::kUndetected) continue;
      if (s.simulator().detected()[j]) continue;
      launch(j);
    }
  };

  // Commits a finished, epoch-valid lane result, replaying exactly the
  // serial wrapper's observable sequence (fold counters, advance the RNG,
  // fold store stats + adopt content, commit the test, fold pool demand,
  // fire the observer).
  auto commit_spec = [&](SpecTask& t) {
    SpecResult& r = *t.result;
    // Lane counter deltas; the absolute pool mirrors survive because the
    // lane never writes det_model_builds/acquires (delta 0).
    s.counters() += r.counters;
    if (r.rng_consumed) rng_.set_state_words(r.rng_words);
    state::StateStore& master = s.state_store();
    state::StateStoreStats stats_delta = r.store->stats();
    stats_delta -= t.snap->store_stats;
    master.apply_stats_delta(stats_delta);
    if (r.store_end_revision != t.snap->store_revision) {
      // Within an epoch the master's content equals the snapshot's (content
      // changes always end the epoch), so adopting the clone wholesale
      // equals replaying the lane's inserts on the master.
      master.adopt_content(*r.store);
    }
    if (r.tr.outcome.detected) s.commit_test(std::move(r.tr.candidate));
    fold_pool_window(r.pool_acquires, r.pool_peak);
    mirror_pool_counters(s.counters());
    if (s.observer()) s.observer()->on_target_end(s, r.tr.effort);
    ++spec_stats_.committed;
    return r.tr.outcome;
  };

  auto drain = [&]() {
    snap->cancelled.store(true, std::memory_order_relaxed);
    while (!inflight.empty()) {
      zombies.push_back(std::move(inflight.front()));
      inflight.pop_front();
    }
    for (SpecTask& t : zombies) {
      t.done.wait();
      account_discarded(t);
    }
    zombies.clear();
  };

  try {
    for (std::size_t i = fm.pass_cursor(); i < fm.size(); ++i) {
      if (pass_deadline.expired() || s.stop_requested()) break;
      if (fm.status(i) != FaultStatus::kUndetected) {
        fm.set_pass_cursor(i + 1);
        continue;
      }
      if (s.simulator().detected()[i]) {
        // Incidentally detected by an earlier test.
        fm.mark_detected(i);
        fm.set_pass_cursor(i + 1);
        continue;
      }

      top_up(i);

      // Uniform mutation probe around the resolve: an epoch ends exactly
      // when the committed state a speculative solve reads has changed.
      const std::array<std::uint64_t, 4> rng_before = rng_.state_words();
      const std::uint64_t revision_before = s.state_store().revision();
      const long tests_before = s.counters().committed_tests;

      TargetOutcome outcome;
      if (!inflight.empty() && inflight.front().fault_index == i) {
        SpecTask t = std::move(inflight.front());
        inflight.pop_front();
        t.done.get();  // rethrows a lane failure
        if (t.snap->epoch == epoch) {
          outcome = commit_spec(t);
        } else {
          account_discarded(t);
          outcome = target_fault(s, i, pass);  // exact serial recompute
        }
      } else {
        outcome = target_fault(s, i, pass);
      }
      resolve_target(s, i, outcome);
      fm.set_pass_cursor(i + 1);
      // One fully-completed unit of work: statuses applied, detections
      // absorbed, cursor advanced — a consistent checkpoint point.  A
      // mid-pass snapshot records only committed state; in-flight
      // speculation is recomputed after a resume.
      s.checkpoint_tick();

      const bool mutated = rng_.state_words() != rng_before ||
                           s.state_store().revision() != revision_before ||
                           s.counters().committed_tests != tests_before;
      if (mutated) {
        ++epoch;
        snap->cancelled.store(true, std::memory_order_relaxed);
        while (!inflight.empty()) {
          zombies.push_back(std::move(inflight.front()));
          inflight.pop_front();
        }
        // Reap whatever already finished so the zombie list stays small;
        // the rest sees the cancel flag and winds down on its own.
        for (auto it = zombies.begin(); it != zombies.end();) {
          if (it->done.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
            account_discarded(*it);
            it = zombies.erase(it);
          } else {
            ++it;
          }
        }
        next_spec = i + 1;
        snap = make_snapshot();
      }
    }
  } catch (...) {
    // Lane tasks reference this frame's pools and snapshot; never unwind
    // past them while a task is still running.
    drain();
    throw;
  }
  drain();
}

}  // namespace gatpg::hybrid
