// GA justification of output values — the paper's concluding extension:
// "this research can be extended to justification of module output values
// in architectural-level test generation.  Backtracing required values
// through high-level modules is a difficult problem, but a genetic approach
// could be used in place of traditional approaches."
//
// Given required values on a subset of primary outputs (a module's outputs,
// when the circuit is an architectural block like the multiplier or the
// Am2910), the justifier evolves input sequences until some prefix drives
// every required output to its value — no backtracing through the module at
// all, exactly the argument of §VI.  The machinery mirrors the state
// justifier: 64 candidates per bit-parallel batch, early exit on the first
// matching prefix, tournament selection.
#pragma once

#include "hybrid/ga_justify.h"

namespace gatpg::hybrid {

struct OutputGoal {
  std::size_t po_index = 0;  // index into Circuit::primary_outputs()
  sim::V3 value = sim::V3::kX;
};

class GaOutputJustifier {
 public:
  explicit GaOutputJustifier(const netlist::Circuit& c) : c_(c) {}

  /// Searches for a sequence that, applied from `current_state`, drives all
  /// goal outputs to their values simultaneously during some cycle.  The
  /// returned sequence includes the vector of the matching cycle.
  GaJustifyResult justify(const std::vector<OutputGoal>& goals,
                          const sim::State3& current_state,
                          const GaJustifyConfig& config,
                          const util::Deadline& deadline) const;

 private:
  const netlist::Circuit& c_;
};

}  // namespace gatpg::hybrid
