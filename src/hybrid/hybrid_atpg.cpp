#include "hybrid/hybrid_atpg.h"

#include <algorithm>
#include <array>
#include <optional>

#include "netlist/depth.h"
#include "serialize/archive.h"
#include "util/stopwatch.h"

namespace gatpg::hybrid {

using atpg::ForwardEngine;
using atpg::ForwardStatus;
using atpg::SearchLimits;
using session::FaultStatus;
using sim::Sequence;
using sim::State3;
using sim::V3;

HybridEngine::HybridEngine(const netlist::Circuit& c,
                           const HybridConfig& config, unsigned depth,
                           util::Rng& rng)
    : c_(c),
      config_(config),
      depth_(depth),
      rng_(rng),
      obs_dist_(atpg::share_observation_distances(c)),
      model_pool_(c) {}

unsigned HybridEngine::ga_sequence_length(const PassConfig& pass) const {
  if (pass.seq_len_override) return pass.seq_len_override;
  const double len = pass.seq_len_multiplier * std::max(1u, depth_);
  // Floor of 4: a structural depth of 1 (datapaths with direct load paths)
  // still needs a few vectors to steer counters/accumulators.
  return std::max(4u, static_cast<unsigned>(len));
}

void HybridEngine::fill_x(Sequence& seq, util::Rng& rng) {
  for (auto& vec : seq) {
    for (auto& v : vec) {
      if (v == V3::kX) v = rng.bit() ? V3::k1 : V3::k0;
    }
  }
}

TargetResult HybridEngine::solve_target(const fault::Fault& f,
                                        std::size_t fault_index,
                                        const PassConfig& pass,
                                        TargetFacilities& fx) const {
  ++fx.counters->targeted;

  SearchLimits limits;
  limits.time_limit_s = pass.time_limit_s;
  limits.max_backtracks = pass.max_backtracks;
  limits.max_forward_frames =
      config_.max_forward_frames
          ? config_.max_forward_frames
          : std::clamp(2 * std::max(1u, depth_), 6u, 24u);
  limits.max_justify_depth =
      config_.max_justify_depth
          ? config_.max_justify_depth
          : std::clamp(4 * std::max(1u, depth_), 8u, 64u);
  limits.incremental_model = config_.incremental_model;
  limits.flat_model = config_.flat_model;

  ForwardEngine forward(c_, f, limits, obs_dist_, fx.pool);
  const GaStateJustifier ga_justifier(c_);
  atpg::DeterministicJustifier det_justifier(
      c_, limits, fx.store->enabled() ? fx.store : nullptr, fx.pool);
  // DeterministicJustifier resets its stats per justify() call; accumulate
  // them here across the attempt loop.
  atpg::SearchStats det_total;

  TargetResult result;
  result.outcome = attempt_solutions(f, fault_index, pass, fx, forward,
                                     ga_justifier, det_justifier, det_total,
                                     result.candidate);

  // Deterministic-engine effort accounting (per fault and cumulative).
  const atpg::SearchStats& fs = forward.stats();
  result.effort.fault_index = fault_index;
  result.effort.model = f.model;
  result.effort.decisions = fs.decisions + det_total.decisions;
  result.effort.backtracks = fs.backtracks + det_total.backtracks;
  result.effort.gate_evals = fs.gate_evals + det_total.gate_evals;
  result.effort.events = fs.events + det_total.events;
  fx.counters->det_decisions += result.effort.decisions;
  fx.counters->det_backtracks += result.effort.backtracks;
  fx.counters->det_gate_evals += result.effort.gate_evals;
  fx.counters->det_events += result.effort.events;
  return result;
}

TargetOutcome HybridEngine::target_fault(
    session::Session& s, std::size_t fault_index, const PassConfig& pass) {
  const auto deadline = util::Deadline::after_seconds(pass.time_limit_s);

  TargetFacilities fx;
  fx.rng = &rng_;
  fx.counters = &s.counters();
  fx.store = &s.state_store();
  fx.pool = &model_pool_;
  fx.good_machine = &s.simulator().good_machine();
  fx.good_state = s.simulator().good_state();
  fx.faulty_state = s.simulator().fault_state(fault_index);
  fx.launch_prev = s.simulator().launch_prev(fault_index);
  fx.deadline = &deadline;
  fx.ga_parallel = config_.parallel;

  model_pool_.begin_peak_window();
  const std::uint64_t acquires_before = model_pool_.acquires();
  TargetResult result =
      solve_target(s.faults().fault(fault_index), fault_index, pass, fx);

  // Commit: extend the session test set and drop everything it detects.
  if (result.outcome.detected) s.commit_test(std::move(result.candidate));

  fold_pool_window(model_pool_.acquires() - acquires_before,
                   model_pool_.peak_outstanding());
  // Absolute pool tallies (not deltas): ≤ a handful of constructions per
  // session is the pool-reuse invariant bench_detengine asserts.  The
  // resume baselines are zero except after load_state.
  mirror_pool_counters(s.counters());
  if (s.observer()) s.observer()->on_target_end(s, result.effort);
  return result.outcome;
}

TargetOutcome HybridEngine::attempt_solutions(
    const fault::Fault& f, std::size_t fault_index, const PassConfig& pass,
    TargetFacilities& fx, ForwardEngine& forward,
    const GaStateJustifier& ga_justifier,
    atpg::DeterministicJustifier& det_justifier, atpg::SearchStats& det_total,
    Sequence& candidate_out) const {
  TargetOutcome outcome;
  const util::Deadline& deadline = *fx.deadline;
  state::StateStore& store = *fx.store;
  const bool use_store = store.enabled();

  // True while every justification failure so far was a completed proof of
  // unjustifiability; together with forward exhaustion this upgrades
  // "exhausted" to "untestable".
  bool all_rejections_proven = true;
  // Attempt 0 was served from the forward-solution cache: the engine will
  // re-derive that same solution first, so skip its duplicate.
  bool forward_resync = false;

  for (unsigned attempt = 0; attempt < config_.max_solutions_per_fault;
       ++attempt) {
    State3 required;
    Sequence vectors;
    bool from_cache = false;
    if (use_store && attempt == 0) {
      // Satellite: the target's first excitation/propagation solution (and
      // its desired state) is computed once and reused across the per-pass
      // retry loop — the excitation state of a fault does not change
      // between passes, only the justification budget does.
      if (const auto* cached = store.take_cached_forward(fault_index)) {
        required = cached->required;
        vectors = cached->vectors;
        from_cache = true;
        forward_resync = true;
      }
    }
    if (!from_cache) {
      ForwardStatus status = forward.next_solution(deadline);
      if (forward_resync && status == ForwardStatus::kSolved) {
        const auto* cached = store.cached_forward(fault_index);
        if (cached && forward.required_state() == cached->required &&
            forward.vectors() == cached->vectors) {
          status = forward.next_solution(deadline);
        }
        forward_resync = false;
      }
      if (status == ForwardStatus::kUntestable) {
        outcome.untestable = true;
        return outcome;
      }
      if (status == ForwardStatus::kAborted) {
        outcome.aborted = true;
        return outcome;
      }
      if (status == ForwardStatus::kExhausted) {
        // Every excitation/propagation option was enumerated; if
        // additionally every required state was *proven* unjustifiable
        // (deterministic justification or a stored proof — GA failures
        // prove nothing), the fault is untestable.
        outcome.untestable = !forward.stats().clipped && all_rejections_proven;
        if (!outcome.untestable) outcome.aborted = true;
        return outcome;
      }
      // kSolved.
      required = forward.required_state();
      vectors = forward.vectors();
      if (use_store && !store.cached_forward(fault_index)) {
        store.cache_forward(fault_index, vectors, required);
      }
    }
    ++fx.counters->forward_solutions;

    const bool state_needed =
        std::any_of(required.begin(), required.end(),
                    [](V3 v) { return v != V3::kX; });

    Sequence justification;
    bool justified = false;
    if (!state_needed) {
      ++fx.counters->no_justification_needed;
      justified = true;
    } else if (pass.mode == JustifyMode::kGenetic) {
      // GA justification from the current good-circuit state; the faulty
      // machine starts all-X, as §IV-A prescribes.  Check first whether the
      // current state already matches (every defined literal of the required
      // cube holds in the current state).
      const State3& current = fx.good_state;
      if (sim::cube_subsumes(required, current)) {
        // Good machine already there; the faulty all-X state matches only
        // X requirements, which is exactly what state_needed covers for
        // the faulty target — still attempt without extra vectors.
        justified = true;
        ++fx.counters->no_justification_needed;
      } else {
        bool proven_impossible = false;
        std::optional<Sequence> cached;
        if (use_store) {
          if (store.known_unjustifiable(required)) {
            // A stored proof: the rejection counts toward untestability
            // exactly like a completed deterministic exhaustion, so
            // all_rejections_proven stays true.
            proven_impossible = true;
          } else {
            cached = store.lookup_justified(f, required, required, current);
          }
        }
        if (cached) {
          justification = std::move(*cached);
          justified = true;
        } else if (!proven_impossible) {
          ++fx.counters->ga_invocations;
          GaJustifyConfig ga_config;
          ga_config.population = pass.ga_population;
          ga_config.generations = pass.ga_generations;
          ga_config.sequence_length = ga_sequence_length(pass);
          ga_config.good_weight = config_.ga_good_weight;
          ga_config.faulty_weight = config_.ga_faulty_weight;
          ga_config.square_fitness = config_.ga_square_fitness;
          ga_config.selection = config_.selection;
          ga_config.parallel = fx.ga_parallel;
          ga_config.width = config_.faultsim.width;
          ga_config.seed = config_.seed ^ (0x9e3779b9ULL * (fault_index + 1)) ^
                           (attempt << 20);
          if (use_store) {
            const std::size_t max_seeds = static_cast<std::size_t>(
                store.config().ga_seed_fraction * pass.ga_population);
            ga_config.seeds = store.seed_sequences(required, max_seeds);
          }
          const GaJustifyResult ga = ga_justifier.justify(
              f, required, required, current, ga_config, deadline);
          if (ga.success) {
            ++fx.counters->ga_successes;
            if (use_store) store.record_justified(required, ga.sequence);
            justification = ga.sequence;
            justified = true;
          } else if (use_store && !ga.sequence.empty()) {
            // Satellite: the best individual's sequence is a near miss for
            // this cube; a later (bigger) GA pass hunting it resumes here.
            store.record_near_miss(required, ga.sequence);
          }
          all_rejections_proven = false;  // GA failure proves nothing
        }
      }
    } else {
      std::optional<Sequence> cached;
      if (use_store) {
        cached = store.lookup_justified(f, required, required, fx.good_state);
      }
      if (cached) {
        justification = std::move(*cached);
        justified = true;
      } else {
        ++fx.counters->det_justify_calls;
        const auto det = det_justifier.justify(required, deadline);
        const atpg::SearchStats& ds = det_justifier.stats();
        det_total.decisions += ds.decisions;
        det_total.backtracks += ds.backtracks;
        det_total.gate_evals += ds.gate_evals;
        det_total.events += ds.events;
        if (det.status == atpg::DeterministicJustifier::Status::kJustified) {
          ++fx.counters->det_justify_successes;
          if (use_store) store.record_justified(required, det.sequence);
          justification = det.sequence;
          justified = true;
        } else if (det.status ==
                   atpg::DeterministicJustifier::Status::kAborted) {
          all_rejections_proven = false;
          outcome.aborted = true;
          return outcome;
        }
        // kUnjustifiable: completed proof; try the next forward solution.
      }
    }

    if (!justified) {
      if (deadline.expired()) {
        outcome.aborted = true;
        return outcome;
      }
      continue;  // Fig. 1: backtrack in the propagation phase
    }

    Sequence candidate = justification;
    candidate.insert(candidate.end(), vectors.begin(), vectors.end());
    fill_x(candidate, *fx.rng);

    if (!fault::FaultSimulator::would_detect_from(c_, *fx.good_machine,
                                                  fx.faulty_state, f, candidate,
                                                  fx.launch_prev)) {
      ++fx.counters->verify_failures;
      all_rejections_proven = false;
      if (deadline.expired()) {
        outcome.aborted = true;
        return outcome;
      }
      continue;
    }

    // Verified: hand the candidate up for commit (the serial wrapper or the
    // speculative committer extends the session test set in fault order).
    candidate_out = std::move(candidate);
    ++fx.counters->committed_tests;
    outcome.detected = true;
    return outcome;
  }

  outcome.aborted = true;  // alternative-solution budget exhausted
  return outcome;
}

void HybridEngine::resolve_target(session::Session& s, std::size_t fault_index,
                                  const TargetOutcome& outcome) {
  if (outcome.detected) {
    s.faults().mark_detected(fault_index);
  } else if (outcome.untestable) {
    s.faults().mark_untestable(fault_index);
  } else if (outcome.aborted) {
    s.faults().mark_aborted(fault_index);
    ++s.counters().aborted_faults;
  }
  // Pick up incidental detections recorded by the fault simulator.
  s.faults().absorb_detections(s.simulator().detected());
}

void HybridEngine::run(session::Session& s, const PassConfig& pass,
                       const util::Deadline& pass_deadline) {
  // Speculative lanes only for passes bounded by backtracks alone: a
  // wall-clock limit makes each target's outcome timing-dependent, which
  // speculation cannot replay bit-identically, so those passes stay serial
  // (see DESIGN.md §4j).
  const unsigned lanes = s.config().target_parallel.resolved_lanes();
  if (lanes > 1 && pass.time_limit_s <= 0 && pass.pass_budget_s <= 0) {
    run_speculative(s, pass, pass_deadline, lanes);
    return;
  }
  session::FaultManager& fm = s.faults();
  // The pass cursor lives in the FaultManager so a mid-pass checkpoint
  // resumes the ascending scan at the exact next target; begin_pass()
  // rewinds it, so an uninterrupted pass scans from 0 as before.
  for (std::size_t i = fm.pass_cursor(); i < fm.size(); ++i) {
    if (pass_deadline.expired() || s.stop_requested()) break;
    if (fm.status(i) != FaultStatus::kUndetected) {
      fm.set_pass_cursor(i + 1);
      continue;
    }
    if (s.simulator().detected()[i]) {
      // Incidentally detected by an earlier test.
      fm.mark_detected(i);
      fm.set_pass_cursor(i + 1);
      continue;
    }
    resolve_target(s, i, target_fault(s, i, pass));
    fm.set_pass_cursor(i + 1);
    // One fully-completed unit of work: statuses applied, detections
    // absorbed, cursor advanced — a consistent checkpoint point.
    s.checkpoint_tick();
  }
}

std::size_t HybridEngine::step(session::Session& s,
                               const util::Deadline& deadline) {
  session::FaultManager& fm = s.faults();
  const std::size_t target = fm.next_undetected(next_target_);
  if (target == fm.size()) return 0;
  next_target_ = target + 1;
  const std::size_t before = fm.detected_count();
  if (s.simulator().detected()[target]) {
    fm.mark_detected(target);
    return fm.detected_count() - before;
  }
  // Stepwise targeting uses the schedule's final (hardest-limits) pass.
  const PassConfig pass = config_.schedule.passes.empty()
                              ? PassConfig{}
                              : config_.schedule.passes.back();
  (void)deadline;  // per-fault limits come from the pass config
  resolve_target(s, target, target_fault(s, target, pass));
  return fm.detected_count() - before;
}

void HybridEngine::save_state(serialize::Writer& w) const {
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(next_target_);
  w.i64(pool_builds_base_ + virt_builds_);
  w.i64(pool_acquires_base_ + virt_acquires_);
  w.u64(virt_inventory_);
}

void HybridEngine::load_state(serialize::Reader& r) {
  std::array<std::uint64_t, 4> words;
  for (std::uint64_t& word : words) word = r.u64();
  rng_.set_state_words(words);
  next_target_ = r.u64();
  pool_builds_base_ = static_cast<long>(r.i64());
  pool_acquires_base_ = static_cast<long>(r.i64());
  // The checkpointed totals become the baselines; the virtual tallies
  // restart at zero against the checkpointed inventory, so post-resume
  // demand only counts builds where the uninterrupted run would have.
  // The real pool is prewarmed (uncounted) to the same inventory so its
  // behavior matches the accounting.
  virt_builds_ = 0;
  virt_acquires_ = 0;
  virt_inventory_ = r.u64();
  model_pool_.prewarm(virt_inventory_);
}

HybridAtpg::HybridAtpg(const netlist::Circuit& c, HybridConfig config)
    : c_(c),
      config_(std::move(config)),
      faults_(fault::collapse(c, config_.fault_model)),
      depth_(config_.sequential_depth_override
                 ? config_.sequential_depth_override
                 : netlist::sequential_depth(c)),
      rng_(config_.seed) {}

AtpgResult HybridAtpg::run(session::ProgressObserver* observer) {
  session::SessionConfig session_config;
  session_config.fault_model = config_.fault_model;
  session_config.faultsim = config_.faultsim;
  session_config.faultsim.parallel = config_.parallel;
  session_config.state_store = config_.state_store;
  session_config.target_parallel = config_.target_parallel;
  session::Session s(c_, faults_, session_config);
  s.set_observer(observer);

  if (config_.prefilter_untestable) {
    SearchLimits pre;
    pre.time_limit_s = config_.prefilter_time_s;
    pre.max_backtracks = config_.prefilter_backtracks;
    pre.max_forward_frames = 4;
    pre.incremental_model = config_.incremental_model;
    pre.flat_model = config_.flat_model;
    const auto obs_dist = atpg::share_observation_distances(c_);
    atpg::FrameModelPool pre_pool(c_);
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      ForwardEngine fe(c_, faults_.faults[i], pre, obs_dist, &pre_pool);
      const auto st =
          fe.next_solution(util::Deadline::after_seconds(pre.time_limit_s));
      if (st == ForwardStatus::kUntestable) {
        s.faults().mark_untestable(i);
      }
    }
  }

  HybridEngine engine(c_, config_, depth_, rng_);
  return s.run(engine, config_.schedule);
}

}  // namespace gatpg::hybrid
