#include "hybrid/hybrid_atpg.h"

#include <algorithm>

#include "netlist/depth.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace gatpg::hybrid {

using atpg::ForwardEngine;
using atpg::ForwardStatus;
using atpg::SearchLimits;
using sim::Sequence;
using sim::State3;
using sim::V3;

HybridAtpg::HybridAtpg(const netlist::Circuit& c, HybridConfig config)
    : c_(c),
      config_(std::move(config)),
      faults_(fault::collapse(c)),
      depth_(config_.sequential_depth_override
                 ? config_.sequential_depth_override
                 : netlist::sequential_depth(c)),
      rng_(config_.seed) {}

unsigned HybridAtpg::ga_sequence_length(const PassConfig& pass) const {
  if (pass.seq_len_override) return pass.seq_len_override;
  const double len = pass.seq_len_multiplier * std::max(1u, depth_);
  // Floor of 4: a structural depth of 1 (datapaths with direct load paths)
  // still needs a few vectors to steer counters/accumulators.
  return std::max(4u, static_cast<unsigned>(len));
}

void HybridAtpg::fill_x(Sequence& seq) {
  for (auto& vec : seq) {
    for (auto& v : vec) {
      if (v == V3::kX) v = rng_.bit() ? V3::k1 : V3::k0;
    }
  }
}

HybridAtpg::TargetOutcome HybridAtpg::target_fault(
    std::size_t fault_index, const PassConfig& pass,
    fault::FaultSimulator& fsim, Sequence& test_set, AtpgResult& result,
    std::vector<Sequence>& segments) {
  TargetOutcome outcome;
  const fault::Fault& f = faults_.faults[fault_index];
  ++result.counters.targeted;

  const auto deadline = util::Deadline::after_seconds(pass.time_limit_s);

  SearchLimits limits;
  limits.time_limit_s = pass.time_limit_s;
  limits.max_backtracks = pass.max_backtracks;
  limits.max_forward_frames =
      config_.max_forward_frames
          ? config_.max_forward_frames
          : std::clamp(2 * std::max(1u, depth_), 6u, 24u);
  limits.max_justify_depth =
      config_.max_justify_depth
          ? config_.max_justify_depth
          : std::clamp(4 * std::max(1u, depth_), 8u, 64u);

  ForwardEngine forward(c_, f, limits);
  const GaStateJustifier ga_justifier(c_);
  atpg::DeterministicJustifier det_justifier(c_, limits);

  // True while every justification failure so far was a completed proof of
  // unjustifiability; together with forward exhaustion this upgrades
  // "exhausted" to "untestable".
  bool all_rejections_proven = true;

  for (unsigned attempt = 0; attempt < config_.max_solutions_per_fault;
       ++attempt) {
    const ForwardStatus status = forward.next_solution(deadline);
    if (status == ForwardStatus::kUntestable) {
      outcome.untestable = true;
      return outcome;
    }
    if (status == ForwardStatus::kAborted) {
      outcome.aborted = true;
      return outcome;
    }
    if (status == ForwardStatus::kExhausted) {
      // Every excitation/propagation option was enumerated; if additionally
      // every required state was *proven* unjustifiable (deterministic
      // justification only — GA failures prove nothing), the fault is
      // untestable.
      outcome.untestable = !forward.stats().clipped && all_rejections_proven;
      if (!outcome.untestable) outcome.aborted = true;
      return outcome;
    }
    // kSolved.
    ++result.counters.forward_solutions;
    const State3 required = forward.required_state();
    Sequence vectors = forward.vectors();

    const bool state_needed =
        std::any_of(required.begin(), required.end(),
                    [](V3 v) { return v != V3::kX; });

    Sequence justification;
    bool justified = false;
    if (!state_needed) {
      ++result.counters.no_justification_needed;
      justified = true;
    } else if (pass.mode == JustifyMode::kGenetic) {
      // GA justification from the current good-circuit state; the faulty
      // machine starts all-X, as §IV-A prescribes.  Check first whether the
      // current state already matches.
      const State3 current = fsim.good_state();
      bool good_matches = true;
      for (std::size_t i = 0; i < required.size(); ++i) {
        if (required[i] != V3::kX && required[i] != current[i]) {
          good_matches = false;
          break;
        }
      }
      if (good_matches) {
        // Good machine already there; the faulty all-X state matches only
        // X requirements, which is exactly what state_needed covers for
        // the faulty target — still attempt without extra vectors.
        justified = true;
        ++result.counters.no_justification_needed;
      } else {
        ++result.counters.ga_invocations;
        GaJustifyConfig ga_config;
        ga_config.population = pass.ga_population;
        ga_config.generations = pass.ga_generations;
        ga_config.sequence_length = ga_sequence_length(pass);
        ga_config.good_weight = config_.ga_good_weight;
        ga_config.faulty_weight = config_.ga_faulty_weight;
        ga_config.square_fitness = config_.ga_square_fitness;
        ga_config.selection = config_.selection;
        ga_config.parallel = config_.parallel;
        ga_config.seed = config_.seed ^ (0x9e3779b9ULL * (fault_index + 1)) ^
                         (attempt << 20);
        const GaJustifyResult ga = ga_justifier.justify(
            f, required, required, current, ga_config, deadline);
        if (ga.success) {
          ++result.counters.ga_successes;
          justification = ga.sequence;
          justified = true;
        }
        all_rejections_proven = false;  // GA failure proves nothing
      }
    } else {
      ++result.counters.det_justify_calls;
      const auto det = det_justifier.justify(required, deadline);
      if (det.status == atpg::DeterministicJustifier::Status::kJustified) {
        ++result.counters.det_justify_successes;
        justification = det.sequence;
        justified = true;
      } else if (det.status ==
                 atpg::DeterministicJustifier::Status::kAborted) {
        all_rejections_proven = false;
        outcome.aborted = true;
        return outcome;
      }
      // kUnjustifiable: completed proof; try the next forward solution.
    }

    if (!justified) {
      if (deadline.expired()) {
        outcome.aborted = true;
        return outcome;
      }
      continue;  // Fig. 1: backtrack in the propagation phase
    }

    Sequence candidate = justification;
    candidate.insert(candidate.end(), vectors.begin(), vectors.end());
    fill_x(candidate);

    if (!fsim.would_detect(fault_index, candidate)) {
      ++result.counters.verify_failures;
      all_rejections_proven = false;
      if (deadline.expired()) {
        outcome.aborted = true;
        return outcome;
      }
      continue;
    }

    // Commit: extend the test set and drop everything it detects.
    fsim.run(candidate);
    test_set.insert(test_set.end(), candidate.begin(), candidate.end());
    segments.push_back(std::move(candidate));
    outcome.detected = true;
    return outcome;
  }

  outcome.aborted = true;  // alternative-solution budget exhausted
  return outcome;
}

AtpgResult HybridAtpg::run() {
  AtpgResult result;
  result.total_faults = faults_.size();
  result.fault_state.assign(faults_.size(), FaultState::kUndetected);

  fault::FaultSimConfig fsim_config = config_.faultsim;
  fsim_config.parallel = config_.parallel;
  fault::FaultSimulator fsim(c_, faults_.faults, fsim_config);
  Sequence test_set;
  std::vector<Sequence> segments;
  util::Stopwatch total;

  if (config_.prefilter_untestable) {
    SearchLimits pre;
    pre.time_limit_s = config_.prefilter_time_s;
    pre.max_backtracks = config_.prefilter_backtracks;
    pre.max_forward_frames = 4;
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      ForwardEngine fe(c_, faults_.faults[i], pre);
      const auto st =
          fe.next_solution(util::Deadline::after_seconds(pre.time_limit_s));
      if (st == ForwardStatus::kUntestable) {
        result.fault_state[i] = FaultState::kUntestable;
      }
    }
  }

  for (const PassConfig& pass : config_.schedule.passes) {
    const auto pass_deadline =
        util::Deadline::after_seconds(pass.pass_budget_s);
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      if (pass_deadline.expired()) break;  // leave the rest for later passes
      if (result.fault_state[i] != FaultState::kUndetected) continue;
      if (fsim.detected()[i]) {
        // Incidentally detected by an earlier test.
        result.fault_state[i] = FaultState::kDetected;
        continue;
      }
      const TargetOutcome outcome =
          target_fault(i, pass, fsim, test_set, result, segments);
      if (outcome.detected) {
        result.fault_state[i] = FaultState::kDetected;
      } else if (outcome.untestable) {
        result.fault_state[i] = FaultState::kUntestable;
      } else if (outcome.aborted) {
        ++result.counters.aborted_faults;
      }
      // Pick up incidental detections recorded by the fault simulator.
      for (std::size_t j = 0; j < faults_.size(); ++j) {
        if (fsim.detected()[j] &&
            result.fault_state[j] == FaultState::kUndetected) {
          result.fault_state[j] = FaultState::kDetected;
        }
      }
    }

    PassOutcome po;
    po.detected = static_cast<std::size_t>(
        std::count(result.fault_state.begin(), result.fault_state.end(),
                   FaultState::kDetected));
    po.untestable = static_cast<std::size_t>(
        std::count(result.fault_state.begin(), result.fault_state.end(),
                   FaultState::kUntestable));
    po.vectors = test_set.size();
    po.time_s = total.seconds();
    result.passes.push_back(po);
    util::log_info() << c_.name() << " pass " << result.passes.size()
                     << ": det=" << po.detected << " vec=" << po.vectors
                     << " unt=" << po.untestable << " t=" << po.time_s << "s";
  }

  result.test_set = std::move(test_set);
  result.segments = std::move(segments);
  return result;
}

}  // namespace gatpg::hybrid
