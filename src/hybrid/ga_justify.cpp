#include "hybrid/ga_justify.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

#include "sim/widesim.h"

namespace gatpg::hybrid {

using netlist::NodeId;
using sim::PackedV3;
using sim::Sequence;
using sim::State3;
using sim::V3;
using sim::Vector3;

namespace {

/// Decodes the first `length` vectors of a chromosome.
Sequence decode(const ga::Chromosome& chromosome, std::size_t num_pi,
                unsigned length) {
  Sequence seq(length, Vector3(num_pi));
  for (unsigned t = 0; t < length; ++t) {
    for (std::size_t i = 0; i < num_pi; ++i) {
      seq[t][i] = chromosome[t * num_pi + i] ? V3::k1 : V3::k0;
    }
  }
  return seq;
}

}  // namespace

GaJustifyResult GaStateJustifier::justify(
    const fault::Fault& fault, const State3& desired_good,
    const State3& desired_faulty, const State3& current_good_state,
    const GaJustifyConfig& config, const util::Deadline& deadline) const {
  const std::size_t num_pi = c_.primary_inputs().size();
  if (config.population == 0 || config.population % 64 != 0) {
    throw std::invalid_argument("GA population must be a multiple of 64");
  }
  if (num_pi == 0 || config.sequence_length == 0) {
    return {};
  }

  GaJustifyResult result;

  // Transition faults force conditionally: the faulty machine's overrides
  // are gated per frame by the launch activity derived from the lockstep
  // good machine (the good value of the launch line in the previous frame
  // must equal the transition's initial value).  The power-up frame cannot
  // launch, so both masks start at zero.
  const bool trans = fault.is_transition();
  const NodeId launch_line =
      fault.pin == fault::kOutputPin
          ? fault.node
          : c_.fanins(fault.node)[static_cast<std::size_t>(fault.pin)];

  ga::GaConfig ga_config;
  ga_config.population_size = config.population;
  ga_config.generations = config.generations;
  ga_config.chromosome_bits = config.sequence_length * num_pi;
  ga_config.selection = config.selection;
  ga_config.seed = config.seed;
  ga_config.seeds.reserve(config.seeds.size());
  for (const Sequence& seed_seq : config.seeds) {
    ga::Chromosome chrom(ga_config.chromosome_bits, 0);
    const std::size_t tmax =
        std::min<std::size_t>(seed_seq.size(), config.sequence_length);
    for (std::size_t t = 0; t < tmax; ++t) {
      const std::size_t width = std::min(num_pi, seed_seq[t].size());
      for (std::size_t i = 0; i < width; ++i) {
        if (seed_seq[t][i] == V3::k1) chrom[t * num_pi + i] = 1;
      }
    }
    ga_config.seeds.push_back(std::move(chrom));
  }

  // Batch evaluator: 64 candidates per bit-parallel simulation, batches
  // fanned out across the worker pool.  Each batch owns its own pair of
  // simulators and writes a disjoint fitness range.  The serial scan's
  // early exit (first batch, in batch order, whose prefix reaches both
  // desired states — at its earliest vector, lowest slot) becomes a
  // lowest-batch-wins reduction: each batch records its own first match,
  // the winner is the matching batch with the smallest index, and an
  // atomic stop flag lets higher batches abandon early without affecting
  // the result.
  constexpr std::size_t kNoBatch = std::numeric_limits<std::size_t>::max();
  auto evaluate = [&](std::span<const ga::Chromosome> population,
                      std::span<double> fitness) -> bool {
    const std::size_t n_batches = (population.size() + 63) / 64;
    std::atomic<std::size_t> best_batch{kNoBatch};
    struct BatchMatch {
      unsigned t = 0;
      unsigned slot = 0;
    };
    std::vector<BatchMatch> matches(n_batches);

    util::parallel_for_chunks(
        config.parallel, population.size(), 64,
        [&](std::size_t batch, std::size_t base, std::size_t end, unsigned) {
          const std::size_t count = end - base;

          sim::SequenceSimulator good(c_);
          good.set_state(current_good_state);
          sim::SequenceSimulator faulty(c_);
          if (trans) {
            faulty.set_override_activity(0);
            faulty.set_latch_override_activity(0);
          }
          if (fault.pin == fault::kOutputPin) {
            faulty.add_output_override(fault.node, fault.stuck_at, ~0ULL);
          } else {
            faulty.add_input_override(fault.node,
                                      static_cast<unsigned>(fault.pin),
                                      fault.stuck_at, ~0ULL);
          }

          std::vector<PackedV3> pi_words(num_pi);
          for (unsigned t = 0; t < config.sequence_length; ++t) {
            // A lower batch already matched: this batch cannot win, and on
            // success every fitness value is zeroed anyway.
            if (batch > best_batch.load(std::memory_order_acquire)) return;
            for (std::size_t i = 0; i < num_pi; ++i) {
              PackedV3 w = PackedV3::broadcast(V3::k0);
              for (std::size_t s = 0; s < count; ++s) {
                if (population[base + s][t * num_pi + i]) {
                  w.set(static_cast<unsigned>(s), V3::k1);
                }
              }
              pi_words[i] = w;
            }
            good.apply_packed(pi_words);
            faulty.apply_packed(pi_words);
            if (trans) {
              // Launch activity for frame t+1, read off the settled good
              // frame; the latch mask must be in place before the clock
              // edge, the current-frame mask after it.
              const PackedV3 lv = good.value(launch_line);
              const std::uint64_t next_act = fault.stuck_at ? lv.v1 : lv.v0;
              faulty.set_latch_override_activity(next_act);
              good.clock();
              faulty.clock();
              faulty.set_override_activity(next_act);
            } else {
              good.clock();
              faulty.clock();
            }

            const std::uint64_t match =
                good.state_match_mask(desired_good) &
                faulty.state_match_mask(desired_faulty);
            if (match != 0) {
              matches[batch] = {t, static_cast<unsigned>(
                                       __builtin_ctzll(match))};
              std::size_t cur = best_batch.load(std::memory_order_relaxed);
              while (batch < cur &&
                     !best_batch.compare_exchange_weak(
                         cur, batch, std::memory_order_release,
                         std::memory_order_relaxed)) {
              }
              return;
            }
          }

          for (std::size_t s = 0; s < count; ++s) {
            const double raw =
                config.good_weight *
                    good.state_match_count(desired_good,
                                           static_cast<unsigned>(s)) +
                config.faulty_weight *
                    faulty.state_match_count(desired_faulty,
                                             static_cast<unsigned>(s));
            fitness[base + s] = config.square_fitness ? raw * raw : raw;
          }
        });

    const std::size_t winner = best_batch.load(std::memory_order_acquire);
    if (winner != kNoBatch) {
      const BatchMatch m = matches[winner];
      result.success = true;
      result.sequence =
          decode(population[winner * 64 + m.slot], num_pi, m.t + 1);
      // Score what was evaluated so far so the engine bookkeeping stays
      // sane, then request termination.
      for (std::size_t s = 0; s < population.size(); ++s) {
        fitness[s] = 0.0;
      }
      return true;
    }
    return deadline.expired();
  };

  // SIMD-wide batch evaluator: 64·width candidates per wide simulator pair.
  // Each wide batch is W consecutive 64-candidate *blocks*; the legacy
  // lowest-batch-wins reduction becomes lowest-global-block-wins.  Block b
  // of batch g is exactly legacy batch g·W+b slot for slot, each block
  // records its own first match (earliest vector, lowest slot), and the
  // winner is the matching block with the smallest global index — so the
  // returned sequence is bit-identical to the width-1 evaluator.  A wide
  // batch may leave its vector loop early only once its block 0 has matched
  // (no lower-indexed block of its own remains) or all of its blocks have.
  constexpr std::size_t kNoBlock = std::numeric_limits<std::size_t>::max();
  const unsigned nw = config.width;
  std::atomic<std::size_t> best_block{kNoBlock};
  struct BlockMatch {
    unsigned t = 0;
    unsigned slot = 0;
  };
  std::vector<BlockMatch> block_matches;
  auto evaluate_wide = [&](std::span<const ga::Chromosome> population,
                           std::span<double> fitness) -> bool {
    const std::size_t chunk = std::size_t{64} * nw;
    best_block.store(kNoBlock, std::memory_order_relaxed);
    block_matches.assign(population.size() / 64, BlockMatch{});

    util::parallel_for_chunks(
        config.parallel, population.size(), chunk,
        [&](std::size_t batch, std::size_t base, std::size_t end, unsigned) {
          const std::size_t count = end - base;
          // The population is a multiple of 64, so every batch is whole
          // 64-candidate blocks; mask words at or above n_blocks belong to
          // ghost slots and are never examined.
          const std::size_t n_blocks = count / 64;

          sim::WideSimulator good(c_, nw);
          good.set_state(current_good_state);
          sim::WideSimulator faulty(c_, nw);
          if (trans) {
            faulty.set_override_activity(sim::WideMask{});
            faulty.set_latch_override_activity(sim::WideMask{});
          }
          const sim::WideMask all_slots =
              sim::WideMask::ones(nw, std::size_t{64} * nw);
          if (fault.pin == fault::kOutputPin) {
            faulty.add_output_override(fault.node, fault.stuck_at, all_slots);
          } else {
            faulty.add_input_override(fault.node,
                                      static_cast<unsigned>(fault.pin),
                                      fault.stuck_at, all_slots);
          }

          std::vector<std::uint64_t> pi1(num_pi * nw);
          std::vector<std::uint64_t> pi0(num_pi * nw);
          std::vector<char> block_done(n_blocks, 0);
          std::size_t blocks_matched = 0;
          for (unsigned t = 0; t < config.sequence_length; ++t) {
            // Every block of a lower batch beats every block of this one;
            // once one of them matched, this batch cannot win, and on
            // success every fitness value is zeroed anyway.
            if (batch * nw > best_block.load(std::memory_order_acquire)) {
              return;
            }
            for (std::size_t i = 0; i < num_pi; ++i) {
              std::uint64_t* r1 = pi1.data() + i * nw;
              std::uint64_t* r0 = pi0.data() + i * nw;
              for (unsigned w = 0; w < nw; ++w) {
                r1[w] = 0;
                r0[w] = ~0ULL;  // default k0, as in the 64-slot evaluator
              }
              for (std::size_t s = 0; s < count; ++s) {
                if (population[base + s][t * num_pi + i]) {
                  const std::uint64_t m = 1ULL << (s & 63);
                  r1[s >> 6] |= m;
                  r0[s >> 6] &= ~m;
                }
              }
            }
            good.apply_wide(pi1, pi0);
            faulty.apply_wide(pi1, pi0);
            if (trans) {
              // Same launch-activity sequencing as the 64-slot evaluator,
              // widened to nw words.
              const std::uint64_t* lr = fault.stuck_at
                                            ? good.row1(launch_line)
                                            : good.row0(launch_line);
              sim::WideMask next_act;
              for (unsigned w = 0; w < nw; ++w) next_act.w[w] = lr[w];
              faulty.set_latch_override_activity(next_act);
              good.clock();
              faulty.clock();
              faulty.set_override_activity(next_act);
            } else {
              good.clock();
              faulty.clock();
            }

            sim::WideMask match = good.state_match_mask(desired_good);
            match &= faulty.state_match_mask(desired_faulty);
            for (std::size_t b = 0; b < n_blocks; ++b) {
              if (block_done[b] || match.w[b] == 0) continue;
              block_done[b] = 1;
              ++blocks_matched;
              const std::size_t blk = batch * nw + b;
              block_matches[blk] = {
                  t, static_cast<unsigned>(__builtin_ctzll(match.w[b]))};
              std::size_t cur = best_block.load(std::memory_order_relaxed);
              while (blk < cur &&
                     !best_block.compare_exchange_weak(
                         cur, blk, std::memory_order_release,
                         std::memory_order_relaxed)) {
              }
            }
            if (block_done[0] || blocks_matched == n_blocks) return;
          }

          // No-match path: identical per-slot arithmetic to the 64-slot
          // evaluator (when any block matched these writes are dead — the
          // success path zeroes every fitness value).
          for (std::size_t s = 0; s < count; ++s) {
            const double raw =
                config.good_weight *
                    good.state_match_count(desired_good,
                                           static_cast<unsigned>(s)) +
                config.faulty_weight *
                    faulty.state_match_count(desired_faulty,
                                             static_cast<unsigned>(s));
            fitness[base + s] = config.square_fitness ? raw * raw : raw;
          }
        });

    const std::size_t winner = best_block.load(std::memory_order_acquire);
    if (winner != kNoBlock) {
      const BlockMatch m = block_matches[winner];
      result.success = true;
      result.sequence =
          decode(population[winner * 64 + m.slot], num_pi, m.t + 1);
      for (std::size_t s = 0; s < population.size(); ++s) {
        fitness[s] = 0.0;
      }
      return true;
    }
    return deadline.expired();
  };

  if (nw > sim::kMaxWideWords) {
    throw std::invalid_argument("GaJustifyConfig: width exceeds kMaxWideWords");
  }
  const ga::GaResult ga_result = ga::GaEngine(ga_config).run(
      nw > 1 ? ga::GaEngine::BatchEvaluator(evaluate_wide)
             : ga::GaEngine::BatchEvaluator(evaluate));
  result.best_fitness = ga_result.best_fitness;
  result.evaluations = ga_result.evaluations;
  result.generations_run = ga_result.generations_run;
  if (!result.success && !ga_result.best.empty()) {
    // Failure: surface the best individual as a near-miss sequence so the
    // caller can seed later populations from it.
    result.sequence = decode(ga_result.best, num_pi, config.sequence_length);
  }
  return result;
}

}  // namespace gatpg::hybrid
