#include "hybrid/output_justify.h"

#include <stdexcept>

namespace gatpg::hybrid {

using netlist::NodeId;
using sim::PackedV3;
using sim::Sequence;
using sim::V3;
using sim::Vector3;

GaJustifyResult GaOutputJustifier::justify(
    const std::vector<OutputGoal>& goals, const sim::State3& current_state,
    const GaJustifyConfig& config, const util::Deadline& deadline) const {
  const std::size_t num_pi = c_.primary_inputs().size();
  if (config.population == 0 || config.population % 64 != 0) {
    throw std::invalid_argument("GA population must be a multiple of 64");
  }
  GaJustifyResult result;
  if (num_pi == 0 || config.sequence_length == 0 || goals.empty()) {
    return result;
  }
  const auto pos = c_.primary_outputs();
  for (const auto& goal : goals) {
    if (goal.po_index >= pos.size() || goal.value == V3::kX) {
      throw std::invalid_argument("bad output goal");
    }
  }

  ga::GaConfig ga_config;
  ga_config.population_size = config.population;
  ga_config.generations = config.generations;
  ga_config.chromosome_bits = config.sequence_length * num_pi;
  ga_config.selection = config.selection;
  ga_config.seed = config.seed;

  auto evaluate = [&](std::span<const ga::Chromosome> population,
                      std::span<double> fitness) -> bool {
    for (std::size_t base = 0; base < population.size(); base += 64) {
      const std::size_t count =
          std::min<std::size_t>(64, population.size() - base);
      sim::SequenceSimulator machine(c_);
      machine.set_state(current_state);

      std::vector<PackedV3> pi_words(num_pi);
      std::vector<unsigned> best_match(count, 0);
      for (unsigned t = 0; t < config.sequence_length; ++t) {
        for (std::size_t i = 0; i < num_pi; ++i) {
          PackedV3 w = PackedV3::broadcast(V3::k0);
          for (std::size_t s = 0; s < count; ++s) {
            if (population[base + s][t * num_pi + i]) {
              w.set(static_cast<unsigned>(s), V3::k1);
            }
          }
          pi_words[i] = w;
        }
        machine.apply_packed(pi_words);

        std::uint64_t all_match = ~0ULL;
        for (const auto& goal : goals) {
          const PackedV3 w = machine.value(pos[goal.po_index]);
          all_match &= goal.value == V3::k1 ? w.v1 : w.v0;
        }
        for (std::size_t s = 0; s < count; ++s) {
          unsigned matched = 0;
          for (const auto& goal : goals) {
            const PackedV3 w = machine.value(pos[goal.po_index]);
            if (w.get(static_cast<unsigned>(s)) == goal.value) ++matched;
          }
          best_match[s] = std::max(best_match[s], matched);
        }
        if (all_match != 0) {
          const unsigned slot =
              static_cast<unsigned>(__builtin_ctzll(all_match));
          result.success = true;
          result.sequence.assign(t + 1, Vector3(num_pi));
          for (unsigned u = 0; u <= t; ++u) {
            for (std::size_t i = 0; i < num_pi; ++i) {
              result.sequence[u][i] =
                  population[base + slot][u * num_pi + i] ? V3::k1 : V3::k0;
            }
          }
          for (std::size_t s = 0; s < population.size(); ++s) fitness[s] = 0.0;
          return true;
        }
        machine.clock();
      }
      for (std::size_t s = 0; s < count; ++s) {
        fitness[base + s] = static_cast<double>(best_match[s]);
      }
    }
    return deadline.expired();
  };

  const ga::GaResult ga_result = ga::GaEngine(ga_config).run(evaluate);
  result.best_fitness = ga_result.best_fitness;
  result.evaluations = ga_result.evaluations;
  result.generations_run = ga_result.generations_run;
  return result;
}

}  // namespace gatpg::hybrid
