// GA-based state justification — the paper's core contribution (§IV).
//
// Each GA individual encodes a candidate input sequence (binary coding, one
// vector per sequence position, vectors laid out contiguously along the
// string).  Candidates are simulated 64 at a time on two bit-parallel
// machines: the good machine continues from the current good-circuit state
// (the state after all previously generated tests), the faulty machine —
// with the target fault injected — starts from the all-unknown state, as the
// paper prescribes instead of resimulating the faulty machine over the whole
// test set.  After every vector the reached states are compared against the
// desired states; the first candidate prefix that matches both terminates
// the search.  Otherwise the GA evolves for a bounded number of generations
// and reports its best fitness:
//
//   fitness = 0.9 * (#matching flip-flops, good machine)
//           + 0.1 * (#matching flip-flops, faulty machine)
//
// (weights configurable; the unequal weighting is ablated in
// bench_fitness_weights).
#pragma once

#include <optional>

#include "fault/fault.h"
#include "ga/genetic.h"
#include "sim/seqsim.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace gatpg::hybrid {

struct GaJustifyConfig {
  std::size_t population = 64;  // multiple of 64 (word parallelism)
  /// Fans the 64-candidate sub-batches of each generation across the worker
  /// pool.  Results are bit-identical for any thread count: the early exit
  /// is a lowest-batch-wins reduction matching the serial scan order.
  util::ParallelConfig parallel;
  unsigned generations = 4;
  unsigned sequence_length = 8;
  double good_weight = 0.9;
  double faulty_weight = 0.1;
  ga::SelectionScheme selection =
      ga::SelectionScheme::kTournamentWithoutReplacement;
  /// Squares the raw fitness before handing it to selection (no-op under
  /// tournament selection — reproduced by bench_selection).
  bool square_fitness = false;
  /// Candidate-group width in 64-bit words: each simulation batch evaluates
  /// 64·width candidates on the SIMD-wide machines (1 = the legacy 64-slot
  /// path, retained verbatim).  The early exit generalizes to a
  /// lowest-block-wins reduction over the 64-candidate blocks inside each
  /// wide batch, so success, sequence, fitness values, and GA evolution are
  /// bit-identical at every width and thread count.
  unsigned width = 1;
  std::uint64_t seed = 1;
  /// Input sequences encoded into the initial population's first slots
  /// (StateStore reachable-state and near-miss harvest); longer sequences
  /// are truncated to sequence_length, shorter ones padded with 0-vectors,
  /// X inputs encoded as 0.  Empty = fully random init, bit-identical to
  /// the pre-seeding behavior.
  std::vector<sim::Sequence> seeds;
};

struct GaJustifyResult {
  bool success = false;
  /// On success: the justifying prefix (the first candidate prefix that
  /// reached both desired states).  On failure: the best individual's full
  /// decoded sequence — a near miss callers may log for cross-pass seeding
  /// (empty only when the GA never evaluated anything).
  sim::Sequence sequence;
  double best_fitness = 0.0;
  std::size_t evaluations = 0;
  unsigned generations_run = 0;
};

class GaStateJustifier {
 public:
  explicit GaStateJustifier(const netlist::Circuit& c) : c_(c) {}

  /// Searches for a sequence that, applied from `current_good_state` (good
  /// machine) and the all-X state (faulty machine, fault injected), reaches
  /// `desired_good` / `desired_faulty`.
  GaJustifyResult justify(const fault::Fault& fault,
                          const sim::State3& desired_good,
                          const sim::State3& desired_faulty,
                          const sim::State3& current_good_state,
                          const GaJustifyConfig& config,
                          const util::Deadline& deadline) const;

 private:
  const netlist::Circuit& c_;
};

}  // namespace gatpg::hybrid
