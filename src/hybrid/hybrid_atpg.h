// The hybrid test generator (GA-HITEC) and the deterministic baseline
// (HITEC mode), expressed as a session::Engine over the shared ATPG session
// substrate:
//
//   for each pass in the schedule (Session::run):
//     for each undetected, not-proven-untestable fault:
//       repeat (Fig. 1 loop, bounded):
//         ForwardEngine: excite + propagate -> (vectors, required state)
//         justify required state:
//           genetic pass  -> GA from the current good-circuit state
//           deterministic -> reverse time processing from the all-X state
//         verify candidate test with the independent fault simulator;
//         on success: commit to the session test set, fault-simulate for
//         incidental detections (fault dropping), move to the next fault;
//         on justification failure: ask the ForwardEngine for an
//         alternative excitation/propagation solution and retry.
//
// Untestability is claimed only on completed exhaustive searches (forward
// exhaustion with every required state proven unjustifiable, or forward
// exhaustion before any solution); searches stopped by a limit mark the
// fault aborted-for-this-pass instead.
//
// The HITEC baseline is this same engine driven by a deterministic-only
// schedule (PassSchedule::hitec); fault-state tracking, fault dropping, and
// test-set accumulation all live in the session layer.
#pragma once

#include <memory>
#include <vector>

#include "atpg/detengine.h"
#include "atpg/justify.h"
#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "hybrid/ga_justify.h"
#include "hybrid/pass.h"
#include "session/session.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace gatpg::hybrid {

// Historical spellings, now provided by the session layer.
using FaultState = session::FaultStatus;
using PassOutcome = session::PassOutcome;
using EngineCounters = session::EngineCounters;
using AtpgResult = session::SessionResult;

struct HybridConfig {
  PassSchedule schedule = PassSchedule::ga_hitec(0.05);
  /// Fault universe the generator targets (stuck-at by default; transition
  /// faults run the same Fig. 1 loop over two-frame launch/capture tests).
  fault::FaultUniverse fault_model = fault::FaultUniverse::kStuckAt;
  /// 0 = compute from the circuit (netlist::sequential_depth).
  unsigned sequential_depth_override = 0;
  /// Propagation window; 0 = auto (clamped, see implementation).
  unsigned max_forward_frames = 0;
  /// Reverse-time depth; 0 = auto.
  unsigned max_justify_depth = 0;
  /// Fig. 1 loop bound: alternative forward solutions tried per fault/pass.
  unsigned max_solutions_per_fault = 20;
  double ga_good_weight = 0.9;
  double ga_faulty_weight = 0.1;
  bool ga_square_fitness = false;
  ga::SelectionScheme selection =
      ga::SelectionScheme::kTournamentWithoutReplacement;
  std::uint64_t seed = 1;
  /// Worker-pool sizing for the fault simulator's group sweeps and the GA
  /// justifier's batch evaluation (0 = hardware_concurrency, 1 = serial).
  /// Results are bit-identical for any thread count.
  util::ParallelConfig parallel;
  /// Fault-simulator engine options (differential vs full-sweep, window).
  /// The `parallel` member above overrides faultsim.parallel so one knob
  /// sizes every pool.
  fault::FaultSimConfig faultsim;
  /// Conclusion-section option: cheap combinational-exhaustion prescreen
  /// that marks easy untestables before pass 1 (bench_prefilter).
  bool prefilter_untestable = false;
  double prefilter_time_s = 0.02;
  long prefilter_backtracks = 200;
  /// Deterministic-engine implication mode: event-driven incremental
  /// (default) vs the oblivious re-simulation reference.  Results are
  /// bit-identical; this knob exists for benchmarking and debugging.
  bool incremental_model = true;
  /// Deterministic-engine FrameModel storage: flat composite-byte cells
  /// (default) vs the legacy nested-vector layout.  Results are
  /// bit-identical; this knob exists for benchmarking and debugging.
  bool flat_model = true;
  /// Cross-fault state-knowledge layer (justified-sequence cache,
  /// unjustifiable-cube proofs, GA seeding, forward-solution reuse).
  /// Disabled by default; disabled runs are bit-identical to the
  /// store-free code path.
  state::StateStoreConfig state_store;
  /// Speculative per-fault targeting lanes (see DESIGN.md §4j).  Only
  /// engaged for passes without wall-clock limits (time_limit_s and
  /// pass_budget_s both <= 0); results are bit-identical to serial at any
  /// lane count.
  util::TargetParallelConfig target_parallel;
};

/// What one fault target reads and writes while it solves, decoupled from
/// the live session so the same solve runs serially (facilities point at
/// the session's own RNG/counters/store/pool/simulator) or speculatively on
/// a lane (facilities point at lane-local clones of an epoch snapshot).
struct TargetFacilities {
  util::Rng* rng = nullptr;                    ///< X-fill stream
  session::EngineCounters* counters = nullptr; ///< activity tallies
  state::StateStore* store = nullptr;          ///< may be disabled, never null
  atpg::FrameModelPool* pool = nullptr;
  /// Good machine the candidate-verify simulation starts from (the session
  /// simulator's, or the epoch snapshot's copy).
  const sim::SequenceSimulator* good_machine = nullptr;
  sim::State3 good_state;    ///< good-machine FF state at target start
  sim::State3 faulty_state;  ///< target fault's parked faulty FF state
  /// Good value of the target fault's launch line in the frame preceding
  /// the candidate (FaultSimulator::launch_prev of the session/epoch state).
  /// Only transition-fault verification consumes it; kX = no launch pending.
  sim::V3 launch_prev = sim::V3::kX;
  const util::Deadline* deadline = nullptr;
  /// Pool sizing for the GA justifier's fitness batches.  Lanes force
  /// {threads = 1}: the lane itself is the parallelism, and GA results are
  /// thread-count-invariant so the answer is unchanged.
  util::ParallelConfig ga_parallel;
};

struct TargetOutcome {
  bool detected = false;
  bool untestable = false;
  bool aborted = false;
};

/// A solved target, not yet committed: the outcome, the per-fault effort
/// row, and (when detected) the candidate test awaiting commit_test.
struct TargetResult {
  TargetOutcome outcome;
  session::TargetEffort effort;
  sim::Sequence candidate;
};

/// Speculation-efficiency counters of the target-parallel scheduler.
/// Deliberately not part of EngineCounters: they measure scheduling luck,
/// not engine behavior, and differ run-to-run with lane count while every
/// EngineCounters field stays bit-identical.
struct SpecStats {
  long speculated = 0;  ///< targets launched on a lane
  long committed = 0;   ///< lane results adopted as-is
  long discarded = 0;   ///< lane results thrown away (recomputed inline)
  long wasted_gate_evals = 0;  ///< gate evals spent on discarded results
};

/// The per-fault targeted engine (Fig. 1).  Reusable standalone against any
/// session; HybridAtpg below is the conventional facade.
class HybridEngine : public session::Engine {
 public:
  /// `rng` supplies the X-fill stream and must outlive the engine.
  HybridEngine(const netlist::Circuit& c, const HybridConfig& config,
               unsigned depth, util::Rng& rng);

  const char* name() const override { return "ga-hitec"; }
  void run(session::Session& session, const PassConfig& pass,
           const util::Deadline& deadline) override;
  /// One targeted fault (round-robin over the undetected set).  Returns
  /// newly detected count (incidental detections included).
  std::size_t step(session::Session& session,
                   const util::Deadline& deadline) override;

  /// Snapshot hooks: the X-fill RNG stream, the stepwise cursor, and the
  /// virtual model-pool tallies/inventory (restored as baselines + prewarm
  /// so the mirrored absolute counters continue the checkpointed totals).
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

  /// Solves one fault against the given facilities without touching any
  /// session or engine state: every read and write goes through `fx`.
  /// Serial targeting and the speculative lanes share this exact code, so
  /// a lane's answer from snapshot state equals the serial answer whenever
  /// the snapshot still matches the committed state.
  TargetResult solve_target(const fault::Fault& f, std::size_t fault_index,
                            const PassConfig& pass, TargetFacilities& fx) const;

  /// Speculation-efficiency counters of the last/current run (cumulative
  /// across passes; zero for serial-only runs).
  const SpecStats& spec_stats() const { return spec_stats_; }

 private:
  TargetOutcome target_fault(session::Session& session,
                             std::size_t fault_index, const PassConfig& pass);
  /// The Fig. 1 attempt loop of solve_target; `det_total` accumulates the
  /// deterministic justifier's per-call SearchStats across attempts and
  /// `candidate` receives the verified test on detection.
  TargetOutcome attempt_solutions(const fault::Fault& f,
                                  std::size_t fault_index,
                                  const PassConfig& pass, TargetFacilities& fx,
                                  atpg::ForwardEngine& forward,
                                  const GaStateJustifier& ga_justifier,
                                  atpg::DeterministicJustifier& det_justifier,
                                  atpg::SearchStats& det_total,
                                  sim::Sequence& candidate) const;
  void resolve_target(session::Session& session, std::size_t fault_index,
                      const TargetOutcome& outcome);
  /// Speculative scheduler (src/hybrid/target_parallel.cpp): lanes solve
  /// faults ahead of the committed frontier; results commit strictly in
  /// fault order and only when their launch epoch is still current.
  void run_speculative(session::Session& session, const PassConfig& pass,
                       const util::Deadline& pass_deadline, unsigned lanes);
  static void fill_x(sim::Sequence& seq, util::Rng& rng);
  unsigned ga_sequence_length(const PassConfig& pass) const;

  /// Folds one target's pool demand (acquire count and peak concurrently
  /// checked-out models) into the virtual tallies.  In serial mode this
  /// reproduces the real pool's constructions()/acquires() exactly (a
  /// target's models are all released by its end, so the pool constructs
  /// precisely when the target's peak exceeds the inventory so far); in
  /// lane mode it reproduces what the serial pool *would* have tallied,
  /// keeping the mirrored counters lane-count-invariant.
  void fold_pool_window(std::uint64_t acquires_delta, std::size_t peak) {
    virt_acquires_ += static_cast<long>(acquires_delta);
    if (peak > virt_inventory_) {
      virt_builds_ += static_cast<long>(peak - virt_inventory_);
      virt_inventory_ = peak;
    }
  }
  void mirror_pool_counters(session::EngineCounters& counters) const {
    counters.det_model_builds = pool_builds_base_ + virt_builds_;
    counters.det_model_acquires = pool_acquires_base_ + virt_acquires_;
  }

  const netlist::Circuit& c_;
  const HybridConfig& config_;
  unsigned depth_;
  util::Rng& rng_;
  /// Observation-distance table shared by every per-fault ForwardEngine.
  atpg::ObsDistances obs_dist_;
  /// FrameModel pool shared by every per-fault ForwardEngine and
  /// DeterministicJustifier on the committer thread: per-target model
  /// construction becomes a reset-and-reuse.  Lanes use their own pools;
  /// the counters mirror the *virtual* tallies below, which are identical
  /// in both modes.
  atpg::FrameModelPool model_pool_;
  std::size_t next_target_ = 0;  // stepwise round-robin cursor
  /// Checkpointed pool tallies carried across a resume: the mirrored
  /// counters report base + the virtual tallies, so a resumed engine
  /// continues the uninterrupted totals (zero for a never-resumed engine).
  long pool_builds_base_ = 0;
  long pool_acquires_base_ = 0;
  /// Virtual pool accounting (see fold_pool_window).
  long virt_builds_ = 0;
  long virt_acquires_ = 0;
  std::size_t virt_inventory_ = 0;
  /// Worker pool for the speculative lanes, created on first parallel pass.
  /// Engine-owned rather than util::shared_pool(): commits run
  /// parallel_for_chunks (fault sim) on the shared pool, and lane tasks
  /// parked in front of those chunks would serialize every commit.
  std::unique_ptr<util::ThreadPool> lane_pool_;
  SpecStats spec_stats_;
};

class HybridAtpg {
 public:
  HybridAtpg(const netlist::Circuit& c, HybridConfig config);

  /// Runs the full schedule on a fresh session.  An optional observer
  /// receives per-pass reports.
  AtpgResult run(session::ProgressObserver* observer = nullptr);

  const fault::FaultList& fault_list() const { return faults_; }

 private:
  const netlist::Circuit& c_;
  HybridConfig config_;
  fault::FaultList faults_;
  unsigned depth_;
  util::Rng rng_;
};

}  // namespace gatpg::hybrid
