// The hybrid test generator (GA-HITEC) and the deterministic baseline
// (HITEC mode), orchestrating all the substrates:
//
//   for each pass in the schedule:
//     for each undetected, not-proven-untestable fault:
//       repeat (Fig. 1 loop, bounded):
//         ForwardEngine: excite + propagate -> (vectors, required state)
//         justify required state:
//           genetic pass  -> GA from the current good-circuit state
//           deterministic -> reverse time processing from the all-X state
//         verify candidate test with the independent fault simulator;
//         on success: append to test set, fault-simulate for incidental
//         detections (fault dropping), move to the next fault;
//         on justification failure: ask the ForwardEngine for an
//         alternative excitation/propagation solution and retry.
//
// Untestability is claimed only on completed exhaustive searches (forward
// exhaustion with every required state proven unjustifiable, or forward
// exhaustion before any solution); searches stopped by a limit mark the
// fault aborted-for-this-pass instead.
#pragma once

#include <vector>

#include "atpg/detengine.h"
#include "atpg/justify.h"
#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "hybrid/ga_justify.h"
#include "hybrid/pass.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gatpg::hybrid {

enum class FaultState { kUndetected, kDetected, kUntestable };

/// Cumulative totals at the end of each pass — one row of Table II/III.
struct PassOutcome {
  std::size_t detected = 0;
  std::size_t vectors = 0;
  std::size_t untestable = 0;
  double time_s = 0.0;
};

/// Internal-activity counters (Fig. 1 instrumentation).
struct EngineCounters {
  long targeted = 0;             // fault targeting attempts
  long forward_solutions = 0;    // excitation/propagation solutions found
  long ga_invocations = 0;
  long ga_successes = 0;
  long det_justify_calls = 0;
  long det_justify_successes = 0;
  long verify_failures = 0;      // candidate tests rejected by fault sim
  long no_justification_needed = 0;
  long aborted_faults = 0;       // per-pass limit hits
};

struct AtpgResult {
  std::vector<PassOutcome> passes;
  sim::Sequence test_set;
  /// The test set as the list of generated subsequences (one per committed
  /// target), preserving the boundaries fault::compact_segments needs.
  std::vector<sim::Sequence> segments;
  std::size_t total_faults = 0;
  std::vector<FaultState> fault_state;
  EngineCounters counters;

  std::size_t detected() const {
    return passes.empty() ? 0 : passes.back().detected;
  }
  std::size_t untestable() const {
    return passes.empty() ? 0 : passes.back().untestable;
  }
};

struct HybridConfig {
  PassSchedule schedule = PassSchedule::ga_hitec(0.05);
  /// 0 = compute from the circuit (netlist::sequential_depth).
  unsigned sequential_depth_override = 0;
  /// Propagation window; 0 = auto (clamped, see implementation).
  unsigned max_forward_frames = 0;
  /// Reverse-time depth; 0 = auto.
  unsigned max_justify_depth = 0;
  /// Fig. 1 loop bound: alternative forward solutions tried per fault/pass.
  unsigned max_solutions_per_fault = 20;
  double ga_good_weight = 0.9;
  double ga_faulty_weight = 0.1;
  bool ga_square_fitness = false;
  ga::SelectionScheme selection =
      ga::SelectionScheme::kTournamentWithoutReplacement;
  std::uint64_t seed = 1;
  /// Worker-pool sizing for the fault simulator's group sweeps and the GA
  /// justifier's batch evaluation (0 = hardware_concurrency, 1 = serial).
  /// Results are bit-identical for any thread count.
  util::ParallelConfig parallel;
  /// Fault-simulator engine options (differential vs full-sweep, window).
  /// The `parallel` member above overrides faultsim.parallel so one knob
  /// sizes every pool.
  fault::FaultSimConfig faultsim;
  /// Conclusion-section option: cheap combinational-exhaustion prescreen
  /// that marks easy untestables before pass 1 (bench_prefilter).
  bool prefilter_untestable = false;
  double prefilter_time_s = 0.02;
  long prefilter_backtracks = 200;
};

class HybridAtpg {
 public:
  HybridAtpg(const netlist::Circuit& c, HybridConfig config);

  /// Runs the full schedule.
  AtpgResult run();

  const fault::FaultList& fault_list() const { return faults_; }

 private:
  struct TargetOutcome {
    bool detected = false;
    bool untestable = false;
    bool aborted = false;
  };

  TargetOutcome target_fault(std::size_t fault_index, const PassConfig& pass,
                             fault::FaultSimulator& fsim,
                             sim::Sequence& test_set, AtpgResult& result,
                             std::vector<sim::Sequence>& segments);
  void fill_x(sim::Sequence& seq);
  unsigned ga_sequence_length(const PassConfig& pass) const;

  const netlist::Circuit& c_;
  HybridConfig config_;
  fault::FaultList faults_;
  unsigned depth_;
  util::Rng rng_;
};

}  // namespace gatpg::hybrid
