// The hybrid test generator (GA-HITEC) and the deterministic baseline
// (HITEC mode), expressed as a session::Engine over the shared ATPG session
// substrate:
//
//   for each pass in the schedule (Session::run):
//     for each undetected, not-proven-untestable fault:
//       repeat (Fig. 1 loop, bounded):
//         ForwardEngine: excite + propagate -> (vectors, required state)
//         justify required state:
//           genetic pass  -> GA from the current good-circuit state
//           deterministic -> reverse time processing from the all-X state
//         verify candidate test with the independent fault simulator;
//         on success: commit to the session test set, fault-simulate for
//         incidental detections (fault dropping), move to the next fault;
//         on justification failure: ask the ForwardEngine for an
//         alternative excitation/propagation solution and retry.
//
// Untestability is claimed only on completed exhaustive searches (forward
// exhaustion with every required state proven unjustifiable, or forward
// exhaustion before any solution); searches stopped by a limit mark the
// fault aborted-for-this-pass instead.
//
// The HITEC baseline is this same engine driven by a deterministic-only
// schedule (PassSchedule::hitec); fault-state tracking, fault dropping, and
// test-set accumulation all live in the session layer.
#pragma once

#include <vector>

#include "atpg/detengine.h"
#include "atpg/justify.h"
#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "hybrid/ga_justify.h"
#include "hybrid/pass.h"
#include "session/session.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace gatpg::hybrid {

// Historical spellings, now provided by the session layer.
using FaultState = session::FaultStatus;
using PassOutcome = session::PassOutcome;
using EngineCounters = session::EngineCounters;
using AtpgResult = session::SessionResult;

struct HybridConfig {
  PassSchedule schedule = PassSchedule::ga_hitec(0.05);
  /// 0 = compute from the circuit (netlist::sequential_depth).
  unsigned sequential_depth_override = 0;
  /// Propagation window; 0 = auto (clamped, see implementation).
  unsigned max_forward_frames = 0;
  /// Reverse-time depth; 0 = auto.
  unsigned max_justify_depth = 0;
  /// Fig. 1 loop bound: alternative forward solutions tried per fault/pass.
  unsigned max_solutions_per_fault = 20;
  double ga_good_weight = 0.9;
  double ga_faulty_weight = 0.1;
  bool ga_square_fitness = false;
  ga::SelectionScheme selection =
      ga::SelectionScheme::kTournamentWithoutReplacement;
  std::uint64_t seed = 1;
  /// Worker-pool sizing for the fault simulator's group sweeps and the GA
  /// justifier's batch evaluation (0 = hardware_concurrency, 1 = serial).
  /// Results are bit-identical for any thread count.
  util::ParallelConfig parallel;
  /// Fault-simulator engine options (differential vs full-sweep, window).
  /// The `parallel` member above overrides faultsim.parallel so one knob
  /// sizes every pool.
  fault::FaultSimConfig faultsim;
  /// Conclusion-section option: cheap combinational-exhaustion prescreen
  /// that marks easy untestables before pass 1 (bench_prefilter).
  bool prefilter_untestable = false;
  double prefilter_time_s = 0.02;
  long prefilter_backtracks = 200;
  /// Deterministic-engine implication mode: event-driven incremental
  /// (default) vs the oblivious re-simulation reference.  Results are
  /// bit-identical; this knob exists for benchmarking and debugging.
  bool incremental_model = true;
  /// Deterministic-engine FrameModel storage: flat composite-byte cells
  /// (default) vs the legacy nested-vector layout.  Results are
  /// bit-identical; this knob exists for benchmarking and debugging.
  bool flat_model = true;
  /// Cross-fault state-knowledge layer (justified-sequence cache,
  /// unjustifiable-cube proofs, GA seeding, forward-solution reuse).
  /// Disabled by default; disabled runs are bit-identical to the
  /// store-free code path.
  state::StateStoreConfig state_store;
};

/// The per-fault targeted engine (Fig. 1).  Reusable standalone against any
/// session; HybridAtpg below is the conventional facade.
class HybridEngine : public session::Engine {
 public:
  /// `rng` supplies the X-fill stream and must outlive the engine.
  HybridEngine(const netlist::Circuit& c, const HybridConfig& config,
               unsigned depth, util::Rng& rng);

  const char* name() const override { return "ga-hitec"; }
  void run(session::Session& session, const PassConfig& pass,
           const util::Deadline& deadline) override;
  /// One targeted fault (round-robin over the undetected set).  Returns
  /// newly detected count (incidental detections included).
  std::size_t step(session::Session& session,
                   const util::Deadline& deadline) override;

  /// Snapshot hooks: the X-fill RNG stream, the stepwise cursor, and the
  /// model-pool tallies/inventory (restored as baselines + prewarm so the
  /// mirrored absolute counters continue the checkpointed totals).
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

 private:
  struct TargetOutcome {
    bool detected = false;
    bool untestable = false;
    bool aborted = false;
  };

  TargetOutcome target_fault(session::Session& session,
                             std::size_t fault_index, const PassConfig& pass);
  /// The Fig. 1 attempt loop of target_fault; `det_total` accumulates the
  /// deterministic justifier's per-call SearchStats across attempts.
  TargetOutcome attempt_solutions(session::Session& session,
                                  std::size_t fault_index,
                                  const PassConfig& pass,
                                  const util::Deadline& deadline,
                                  atpg::ForwardEngine& forward,
                                  const GaStateJustifier& ga_justifier,
                                  atpg::DeterministicJustifier& det_justifier,
                                  atpg::SearchStats& det_total);
  void resolve_target(session::Session& session, std::size_t fault_index,
                      const TargetOutcome& outcome);
  void fill_x(sim::Sequence& seq);
  unsigned ga_sequence_length(const PassConfig& pass) const;

  const netlist::Circuit& c_;
  const HybridConfig& config_;
  unsigned depth_;
  util::Rng& rng_;
  /// Observation-distance table shared by every per-fault ForwardEngine.
  atpg::ObsDistances obs_dist_;
  /// FrameModel pool shared by every per-fault ForwardEngine and
  /// DeterministicJustifier: per-target model construction becomes a
  /// reset-and-reuse (constructions() is mirrored into EngineCounters).
  atpg::FrameModelPool model_pool_;
  std::size_t next_target_ = 0;  // stepwise round-robin cursor
  /// Checkpointed pool tallies carried across a resume: the mirrored
  /// counters report base + the live pool's own tallies, so a resumed
  /// engine's fresh pool continues the uninterrupted totals (zero for a
  /// never-resumed engine).
  long pool_builds_base_ = 0;
  long pool_acquires_base_ = 0;
};

class HybridAtpg {
 public:
  HybridAtpg(const netlist::Circuit& c, HybridConfig config);

  /// Runs the full schedule on a fresh session.  An optional observer
  /// receives per-pass reports.
  AtpgResult run(session::ProgressObserver* observer = nullptr);

  const fault::FaultList& fault_list() const { return faults_; }

 private:
  const netlist::Circuit& c_;
  HybridConfig config_;
  fault::FaultList faults_;
  unsigned depth_;
  util::Rng rng_;
};

}  // namespace gatpg::hybrid
