#include "session/pass.h"

namespace gatpg::session {

PassSchedule PassSchedule::ga_hitec(double time_scale) {
  PassSchedule s;
  PassConfig p1;
  p1.mode = JustifyMode::kGenetic;
  p1.time_limit_s = 1.0 * time_scale;
  p1.max_backtracks = 10000;
  p1.ga_population = 64;
  p1.ga_generations = 4;
  p1.seq_len_multiplier = 4.0;
  s.passes.push_back(p1);

  PassConfig p2;
  p2.mode = JustifyMode::kGenetic;
  p2.time_limit_s = 10.0 * time_scale;
  p2.max_backtracks = 100000;
  p2.ga_population = 128;
  p2.ga_generations = 8;
  p2.seq_len_multiplier = 8.0;
  s.passes.push_back(p2);

  PassConfig p3;
  p3.mode = JustifyMode::kDeterministic;
  p3.time_limit_s = 100.0 * time_scale;
  p3.max_backtracks = 1000000;
  s.passes.push_back(p3);
  return s;
}

PassSchedule PassSchedule::hitec(double time_scale) {
  PassSchedule s;
  double t = 1.0;
  long b = 10000;
  for (int i = 0; i < 3; ++i) {
    PassConfig p;
    p.mode = JustifyMode::kDeterministic;
    p.time_limit_s = t * time_scale;
    p.max_backtracks = b;
    s.passes.push_back(p);
    t *= 10.0;
    b *= 10;
  }
  return s;
}

PassSchedule PassSchedule::single(double budget_s) {
  PassSchedule s;
  PassConfig p;
  p.pass_budget_s = budget_s;
  s.passes.push_back(p);
  return s;
}

}  // namespace gatpg::session
