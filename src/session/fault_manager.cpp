#include "session/fault_manager.h"

#include <algorithm>
#include <utility>

#include "serialize/archive.h"

namespace gatpg::session {

FaultManager::FaultManager(fault::FaultList list)
    : list_(std::move(list)),
      status_(list_.size(), FaultStatus::kUndetected),
      aborted_(list_.size(), 0) {}

void FaultManager::mark_detected(std::size_t i) {
  if (status_[i] == FaultStatus::kDetected) return;
  if (status_[i] == FaultStatus::kUntestable) --num_untestable_;
  status_[i] = FaultStatus::kDetected;
  ++num_detected_;
}

void FaultManager::mark_untestable(std::size_t i) {
  if (status_[i] != FaultStatus::kUndetected) return;
  status_[i] = FaultStatus::kUntestable;
  ++num_untestable_;
}

std::size_t FaultManager::absorb_detections(
    const std::vector<char>& fsim_detected) {
  std::size_t newly = 0;
  for (std::size_t i = 0; i < status_.size(); ++i) {
    if (fsim_detected[i] && status_[i] == FaultStatus::kUndetected) {
      status_[i] = FaultStatus::kDetected;
      ++num_detected_;
      ++newly;
    }
  }
  return newly;
}

void FaultManager::begin_pass() {
  std::fill(aborted_.begin(), aborted_.end(), 0);
  pass_cursor_ = 0;
}

void FaultManager::mark_aborted(std::size_t i) {
  if (!aborted_[i]) {
    aborted_[i] = 1;
  }
  ++aborted_total_;
}

std::vector<std::size_t> FaultManager::undetected_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < status_.size(); ++i) {
    if (status_[i] == FaultStatus::kUndetected) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> FaultManager::undropped_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < status_.size(); ++i) {
    if (status_[i] != FaultStatus::kDetected) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> FaultManager::sample_undropped(
    util::Rng& rng, std::size_t max) const {
  std::vector<std::size_t> undropped = undropped_indices();
  if (undropped.size() <= max) return undropped;
  // Partial Fisher-Yates for an unbiased sample.
  for (std::size_t i = 0; i < max; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(undropped.size() - i));
    std::swap(undropped[i], undropped[j]);
  }
  undropped.resize(max);
  return undropped;
}

std::size_t FaultManager::next_undetected(std::size_t start) const {
  const std::size_t n = status_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t i = (start + probe) % n;
    if (status_[i] == FaultStatus::kUndetected) return i;
  }
  return n;
}

std::uint64_t FaultManager::digest() const {
  serialize::Digest d;
  d.add_u64(status_.size());
  for (const FaultStatus s : status_)
    d.add_byte(static_cast<std::uint8_t>(s));
  for (const char a : aborted_) d.add_byte(a ? 1 : 0);
  d.add_u64(num_detected_);
  d.add_u64(num_untestable_);
  d.add_u64(static_cast<std::uint64_t>(aborted_total_));
  return d.value();
}

void FaultManager::save(serialize::Writer& w) const {
  w.begin_section("FMGR");
  w.u64(status_.size());
  for (const FaultStatus s : status_) w.u8(static_cast<std::uint8_t>(s));
  for (const char a : aborted_) w.u8(a ? 1 : 0);
  w.u64(num_detected_);
  w.u64(num_untestable_);
  w.i64(aborted_total_);
  w.u64(pass_cursor_);
  w.end_section();
}

void FaultManager::load(serialize::Reader& r) {
  r.enter_section("FMGR");
  const std::uint64_t n = r.u64();
  if (n != status_.size())
    throw serialize::SnapshotError(
        "snapshot fault count " + std::to_string(n) + " != live fault count " +
        std::to_string(status_.size()));
  for (auto& s : status_) {
    const std::uint8_t v = r.u8();
    if (v > static_cast<std::uint8_t>(FaultStatus::kUntestable))
      throw serialize::SnapshotError("snapshot: invalid fault status");
    s = static_cast<FaultStatus>(v);
  }
  for (auto& a : aborted_) a = static_cast<char>(r.u8());
  num_detected_ = r.u64();
  num_untestable_ = r.u64();
  aborted_total_ = static_cast<long>(r.i64());
  pass_cursor_ = r.u64();
  r.leave_section();
}

}  // namespace gatpg::session
