// Shared test-set accumulation for every test generator.
//
// Engines commit whole candidate sequences (one justification+propagation
// chain, one evolved GA sequence, one random block); the builder keeps both
// the flat concatenated test set — what gets graded and shipped — and the
// per-commit segment boundaries that fault::compact_segments needs.  The
// flat set is always the in-order concatenation of the segments (tested
// invariant), so the three divergent test_set/segments copies the engines
// used to keep collapse into this one structure.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/seqsim.h"

namespace gatpg::serialize {
class Writer;
class Reader;
}  // namespace gatpg::serialize

namespace gatpg::session {

class TestSetBuilder {
 public:
  /// Appends `segment` to the flat test set and records its boundary.
  /// Returns the new segment's index.
  std::size_t commit(sim::Sequence segment);

  const sim::Sequence& test_set() const { return test_set_; }
  const std::vector<sim::Sequence>& segments() const { return segments_; }
  std::size_t vectors() const { return test_set_.size(); }
  std::size_t segment_count() const { return segments_.size(); }

  // -- Snapshot support ------------------------------------------------------

  /// FNV-1a-64 over segment shapes and vector values.
  std::uint64_t digest() const;
  /// Serializes the segments only; load() rebuilds the flat concatenation,
  /// preserving the flat-equals-concatenation invariant by construction.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  sim::Sequence test_set_;
  std::vector<sim::Sequence> segments_;
};

}  // namespace gatpg::session
