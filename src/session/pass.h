// Pass schedules (the paper's Table I), shared by every session engine.
//
// Both GA-HITEC and the HITEC baseline make repeated passes over the fault
// list with escalating resource limits.  GA-HITEC uses genetic state
// justification in the first two passes (growing population, generations and
// sequence length) and deterministic justification afterwards; the HITEC
// baseline uses deterministic justification in every pass with 1 s / 10 s /
// 100 s per-fault time limits and a 10,000-backtrack cap multiplied by ten
// per pass.  `time_scale` shrinks the wall-clock limits uniformly — the
// paper's numbers target a 1995 SPARCstation 20; the schedule structure, not
// the absolute seconds, is what matters (see DESIGN.md substitutions).
//
// Engines that do not make per-fault targeted passes (the simulation-based
// generators) run under a single pass whose `pass_budget_s` is the whole-run
// time limit; `PassSchedule::single` builds that.
#pragma once

#include <cstddef>
#include <vector>

namespace gatpg::session {

enum class JustifyMode { kGenetic, kDeterministic };

struct PassConfig {
  JustifyMode mode = JustifyMode::kDeterministic;
  double time_limit_s = 1.0;   // per fault
  /// Wall-clock budget for the whole pass; once exceeded, remaining faults
  /// are left for the next pass (0 = unlimited, the paper's setting — its
  /// runs took up to 39 hours).  Benches set this to keep sweeps bounded.
  double pass_budget_s = 0.0;
  long max_backtracks = 10000; // forward-engine budget per fault
  // GA parameters (kGenetic passes only).
  std::size_t ga_population = 64;
  unsigned ga_generations = 4;
  double seq_len_multiplier = 4.0;  // x sequential depth
  unsigned seq_len_override = 0;    // absolute length; 0 = use multiplier
};

struct PassSchedule {
  std::vector<PassConfig> passes;

  /// Table I: GA (1 s, pop 64, 4 gens, len x/2), GA (10 s, pop 128, 8 gens,
  /// len x), deterministic (100 s).  With the paper's Table II settings
  /// x = 8 x sequential depth, so the multipliers are 4 and 8.
  static PassSchedule ga_hitec(double time_scale = 1.0);

  /// HITEC baseline: deterministic justification every pass; 1 s / 10 s /
  /// 100 s, backtracks 10k / 100k / 1M.
  static PassSchedule hitec(double time_scale = 1.0);

  /// One pass whose whole-pass budget is `budget_s` (0 = unlimited) — the
  /// schedule shape of the single-phase engines (simulation-based GA,
  /// random patterns, the alternating hybrid).
  static PassSchedule single(double budget_s = 0.0);
};

}  // namespace gatpg::session
