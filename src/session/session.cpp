#include "session/session.h"

#include <utility>

#include "util/logging.h"

namespace gatpg::session {

Session::Session(const netlist::Circuit& c, fault::FaultList faults,
                 SessionConfig config)
    : c_(c),
      faults_(std::move(faults)),
      config_(config),
      fsim_(c, faults_.list().faults, config_.faultsim),
      store_(c, config_.state_store) {}

Session::Session(const netlist::Circuit& c, SessionConfig config)
    : Session(c, fault::collapse(c, config.fault_model), config) {}

std::size_t Session::commit_test(sim::Sequence candidate) {
  // With the state store on, the fault simulator's good machine doubles as
  // the reachable-state harvester: every state it visits while absorbing
  // the committed test feeds the GA seeding pool.
  std::vector<sim::State3> trace;
  if (store_.enabled()) fsim_.set_good_state_sink(&trace);
  const auto newly = fsim_.run(candidate);
  if (store_.enabled()) {
    fsim_.set_good_state_sink(nullptr);
    store_.record_reachable_trace(candidate, trace);
  }
  tests_.commit(std::move(candidate));
  return newly.size();
}

SessionResult Session::run(Engine& engine, const PassSchedule& schedule) {
  running_engine_ = &engine;
  stop_requested_ = false;
  if (!resume_primed_) {
    // A fresh run (not a resume continuation): any pass progress left over
    // from a previous schedule on this session is irrelevant to it.
    completed_outcomes_.clear();
    run_rounds_base_ = rounds_;
  }
  resume_primed_ = false;

  if (observer_) observer_->on_session_begin(*this);

  SessionResult result;
  result.total_faults = faults_.size();

  for (std::size_t pass_index = 0; pass_index < schedule.passes.size();
       ++pass_index) {
    const PassConfig& pass = schedule.passes[pass_index];
    if (pass_index < completed_outcomes_.size()) {
      // Completed before the checkpoint; replay the saved row verbatim.
      result.passes.push_back(completed_outcomes_[pass_index]);
      continue;
    }
    const bool continuing = resume_mid_pass_;
    resume_mid_pass_ = false;
    // A mid-pass resume keeps the restored aborted flags and pass cursor;
    // begin_pass() would rewind the pass the checkpoint interrupted.
    if (!continuing) faults_.begin_pass();
    pass_in_progress_ = true;
    if (observer_) observer_->on_pass_begin(*this, pass_index, pass);

    const auto deadline = util::Deadline::after_seconds(pass.pass_budget_s);
    engine.run(*this, pass, deadline);
    if (stop_requested_) break;  // checkpointed and stopping: no outcome row

    counters_.store = store_.stats();
    PassOutcome po;
    po.detected = faults_.detected_count();
    po.vectors = tests_.vectors();
    po.untestable = faults_.untestable_count();
    po.time_s = elapsed_s();
    result.passes.push_back(po);
    completed_outcomes_.push_back(po);
    pass_in_progress_ = false;
    if (observer_) observer_->on_pass_end(*this, pass_index, po);
    util::log_info() << c_.name() << " pass " << result.passes.size() << ": det="
                     << po.detected << " vec=" << po.vectors << " unt="
                     << po.untestable << " t=" << po.time_s << "s";
  }

  result.test_set = tests_.test_set();
  result.segments = tests_.segments();
  result.fault_state = faults_.status();
  counters_.store = store_.stats();
  result.counters = counters_;
  result.rounds = rounds_ - run_rounds_base_;
  result.evaluations = evaluations_;
  result.digests.faults = faults_.digest();
  result.digests.tests = tests_.digest();
  result.digests.store = store_.digest();
  if (observer_) observer_->on_session_end(*this, result);
  running_engine_ = nullptr;
  return result;
}

void Session::checkpoint_tick() {
  ++ticks_;
  const CheckpointConfig& cp = config_.checkpoint;
  if (cp.path.empty()) return;
  bool write = false;
  if (cp.stop_after_ticks > 0 && ticks_ >= cp.stop_after_ticks &&
      !stop_requested_) {
    stop_requested_ = true;
    write = true;
  }
  if (cp.every_ticks > 0 && ticks_ % cp.every_ticks == 0) write = true;
  if (cp.interval_s > 0.0 &&
      total_.seconds() - last_checkpoint_s_ >= cp.interval_s) {
    write = true;
  }
  if (write) {
    checkpoint(cp.path);
    last_checkpoint_s_ = total_.seconds();
  }
}

}  // namespace gatpg::session
