#include "session/session.h"

#include <utility>

#include "util/logging.h"

namespace gatpg::session {

Session::Session(const netlist::Circuit& c, fault::FaultList faults,
                 SessionConfig config)
    : c_(c),
      faults_(std::move(faults)),
      config_(config),
      fsim_(c, faults_.list().faults, config_.faultsim),
      store_(c, config_.state_store) {}

Session::Session(const netlist::Circuit& c, SessionConfig config)
    : Session(c, fault::collapse(c), config) {}

std::size_t Session::commit_test(sim::Sequence candidate) {
  // With the state store on, the fault simulator's good machine doubles as
  // the reachable-state harvester: every state it visits while absorbing
  // the committed test feeds the GA seeding pool.
  std::vector<sim::State3> trace;
  if (store_.enabled()) fsim_.set_good_state_sink(&trace);
  const auto newly = fsim_.run(candidate);
  if (store_.enabled()) {
    fsim_.set_good_state_sink(nullptr);
    store_.record_reachable_trace(candidate, trace);
  }
  tests_.commit(std::move(candidate));
  return newly.size();
}

SessionResult Session::run(Engine& engine, const PassSchedule& schedule) {
  if (observer_) observer_->on_session_begin(*this);

  SessionResult result;
  result.total_faults = faults_.size();
  const long rounds_before = rounds_;

  for (const PassConfig& pass : schedule.passes) {
    const std::size_t pass_index = result.passes.size();
    faults_.begin_pass();
    if (observer_) observer_->on_pass_begin(*this, pass_index, pass);

    const auto deadline = util::Deadline::after_seconds(pass.pass_budget_s);
    engine.run(*this, pass, deadline);

    counters_.store = store_.stats();
    PassOutcome po;
    po.detected = faults_.detected_count();
    po.vectors = tests_.vectors();
    po.untestable = faults_.untestable_count();
    po.time_s = total_.seconds();
    result.passes.push_back(po);
    if (observer_) observer_->on_pass_end(*this, pass_index, po);
    util::log_info() << c_.name() << " pass " << result.passes.size() << ": det="
                     << po.detected << " vec=" << po.vectors << " unt="
                     << po.untestable << " t=" << po.time_s << "s";
  }

  result.test_set = tests_.test_set();
  result.segments = tests_.segments();
  result.fault_state = faults_.status();
  counters_.store = store_.stats();
  result.counters = counters_;
  result.rounds = rounds_ - rounds_before;
  result.evaluations = evaluations_;
  if (observer_) observer_->on_session_end(*this, result);
  return result;
}

}  // namespace gatpg::session
