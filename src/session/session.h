// The shared ATPG session: one fault population, one test set, one fault
// simulator, driven by interchangeable engines over a pass schedule.
//
// Ownership:
//
//   Session
//     ├── FaultManager      fault list + per-fault lifecycle + dropping
//     ├── TestSetBuilder    flat test set + per-target segment boundaries
//     ├── fault::FaultSimulator   the one continuous simulation of the
//     │                     growing test set (fault dropping, good state)
//     └── ProgressObserver* (optional, not owned)  per-pass reporting
//
//   Session::run(engine, schedule) drives any Engine implementation through
//   the schedule and produces the unified SessionResult every generator now
//   returns.  Engines never keep private fault-state vectors or test-set
//   copies; everything flows through the session.
#pragma once

#include <vector>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "netlist/circuit.h"
#include "session/engine.h"
#include "session/fault_manager.h"
#include "session/observer.h"
#include "session/pass.h"
#include "session/test_set_builder.h"
#include "state/state_store.h"
#include "util/stopwatch.h"

namespace gatpg::session {

/// The unified result every session-driven generator produces (the former
/// AtpgResult / SimGenResult / AlternatingResult, collapsed).
struct SessionResult {
  /// Cumulative Det/Vec/Unt/Time after each pass (Table II/III rows).
  std::vector<PassOutcome> passes;
  sim::Sequence test_set;
  /// The test set as the list of generated subsequences (one per committed
  /// target/round/block), preserving the boundaries fault::compact_segments
  /// needs.  Concatenating them in order reproduces test_set exactly.
  std::vector<sim::Sequence> segments;
  std::size_t total_faults = 0;
  std::vector<FaultStatus> fault_state;
  EngineCounters counters;
  /// Engine rounds completed during this run (GA rounds for the
  /// simulation-based engines; 0 for the targeted engines).
  long rounds = 0;
  /// Cumulative fitness evaluations over the session's lifetime.
  long evaluations = 0;

  std::size_t detected() const {
    return passes.empty() ? 0 : passes.back().detected;
  }
  std::size_t untestable() const {
    return passes.empty() ? 0 : passes.back().untestable;
  }
  double coverage() const {
    return total_faults == 0
               ? 0.0
               : static_cast<double>(detected()) /
                     static_cast<double>(total_faults);
  }
};

struct SessionConfig {
  /// Fault-simulator engine options (threads, differential vs full-sweep).
  fault::FaultSimConfig faultsim;
  /// State-knowledge layer options (disabled by default; enabling it must
  /// not change which faults are detectable, only how fast they resolve).
  state::StateStoreConfig state_store;
};

class Session {
 public:
  /// Builds the session around an explicit (already collapsed) fault list.
  Session(const netlist::Circuit& c, fault::FaultList faults,
          SessionConfig config = {});
  /// Convenience: collapses the circuit's fault universe itself.
  explicit Session(const netlist::Circuit& c, SessionConfig config = {});

  const netlist::Circuit& circuit() const { return c_; }
  FaultManager& faults() { return faults_; }
  const FaultManager& faults() const { return faults_; }
  TestSetBuilder& tests() { return tests_; }
  const TestSetBuilder& tests() const { return tests_; }
  fault::FaultSimulator& simulator() { return fsim_; }
  const fault::FaultSimulator& simulator() const { return fsim_; }
  EngineCounters& counters() { return counters_; }
  const EngineCounters& counters() const { return counters_; }
  state::StateStore& state_store() { return store_; }
  const state::StateStore& state_store() const { return store_; }

  /// Wall-clock seconds since construction (what PassOutcome::time_s
  /// reports).
  double elapsed_s() const { return total_.seconds(); }

  /// Observer for per-pass reporting; nullptr (default) disables it.  Not
  /// owned; must outlive run().
  void set_observer(ProgressObserver* observer) { observer_ = observer; }
  ProgressObserver* observer() const { return observer_; }

  /// Commits a verified candidate test: simulates it on the session fault
  /// simulator as a continuation of the test set so far (fault dropping),
  /// then appends it with a segment boundary.  Returns the number of faults
  /// the simulator newly detected.  Callers credit those detections to the
  /// FaultManager via faults().absorb_detections(simulator().detected()).
  std::size_t commit_test(sim::Sequence candidate);

  /// Engine bookkeeping: one completed engine round (a GA round of the
  /// simulation-based generators), and fitness-evaluation counts.
  void note_round() { ++rounds_; }
  void note_evaluations(long n) { evaluations_ += n; }
  long evaluations() const { return evaluations_; }

  /// Drives `engine` through `schedule`: per pass, clears the
  /// aborted-this-pass flags, derives the pass deadline from
  /// PassConfig::pass_budget_s, runs the engine, and records the cumulative
  /// PassOutcome row (reported to the observer).  Returns the unified
  /// result; the session stays live, so callers can keep stepping engines
  /// or run another schedule on the same fault population.
  SessionResult run(Engine& engine, const PassSchedule& schedule);

 private:
  const netlist::Circuit& c_;
  FaultManager faults_;
  SessionConfig config_;
  fault::FaultSimulator fsim_;
  state::StateStore store_;
  TestSetBuilder tests_;
  EngineCounters counters_;
  long rounds_ = 0;
  long evaluations_ = 0;
  util::Stopwatch total_;
  ProgressObserver* observer_ = nullptr;
};

}  // namespace gatpg::session
