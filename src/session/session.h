// The shared ATPG session: one fault population, one test set, one fault
// simulator, driven by interchangeable engines over a pass schedule.
//
// Ownership:
//
//   Session
//     ├── FaultManager      fault list + per-fault lifecycle + dropping
//     ├── TestSetBuilder    flat test set + per-target segment boundaries
//     ├── fault::FaultSimulator   the one continuous simulation of the
//     │                     growing test set (fault dropping, good state)
//     └── ProgressObserver* (optional, not owned)  per-pass reporting
//
//   Session::run(engine, schedule) drives any Engine implementation through
//   the schedule and produces the unified SessionResult every generator now
//   returns.  Engines never keep private fault-state vectors or test-set
//   copies; everything flows through the session.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "netlist/circuit.h"
#include "session/engine.h"
#include "session/fault_manager.h"
#include "session/observer.h"
#include "session/pass.h"
#include "session/test_set_builder.h"
#include "state/state_store.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace gatpg::session {

/// The unified result every session-driven generator produces (the former
/// AtpgResult / SimGenResult / AlternatingResult, collapsed).
struct SessionResult {
  /// Cumulative Det/Vec/Unt/Time after each pass (Table II/III rows).
  std::vector<PassOutcome> passes;
  sim::Sequence test_set;
  /// The test set as the list of generated subsequences (one per committed
  /// target/round/block), preserving the boundaries fault::compact_segments
  /// needs.  Concatenating them in order reproduces test_set exactly.
  std::vector<sim::Sequence> segments;
  std::size_t total_faults = 0;
  std::vector<FaultStatus> fault_state;
  EngineCounters counters;
  /// Engine rounds completed during this run (GA rounds for the
  /// simulation-based engines; 0 for the targeted engines).
  long rounds = 0;
  /// Cumulative fitness evaluations over the session's lifetime.
  long evaluations = 0;
  /// Content digests of the final session state (FaultManager status array,
  /// TestSetBuilder segments, StateStore caches).  Two runs are
  /// bit-identical iff these match — the kill-and-resume suite and the
  /// sharded daemon's merge verification both compare them.
  struct Digests {
    std::uint64_t faults = 0;
    std::uint64_t tests = 0;
    std::uint64_t store = 0;
  };
  Digests digests;

  std::size_t detected() const {
    return passes.empty() ? 0 : passes.back().detected;
  }
  std::size_t untestable() const {
    return passes.empty() ? 0 : passes.back().untestable;
  }
  double coverage() const {
    return total_faults == 0
               ? 0.0
               : static_cast<double>(detected()) /
                     static_cast<double>(total_faults);
  }
};

/// Auto-checkpoint policy, evaluated by Session::checkpoint_tick() — the
/// hook the engines call after every fully-completed unit of work (a
/// resolved target, a committed GA round), i.e. exactly at the points where
/// the live state is a consistent prefix of the run.
struct CheckpointConfig {
  /// Snapshot file path; empty disables auto-checkpointing entirely.
  std::string path;
  /// Write a snapshot whenever this many seconds have passed since the
  /// last one (0 = no time-based checkpointing).
  double interval_s = 0.0;
  /// Write a snapshot every N ticks (0 = no tick-based checkpointing).
  long every_ticks = 0;
  /// Test hook: after this many ticks, write one snapshot and request the
  /// engine to stop (0 = never).  The kill-and-resume suite uses this to
  /// interrupt a run at an exact, reproducible mid-pass point.
  long stop_after_ticks = 0;
};

struct SessionConfig {
  /// Fault universe the session targets.  The convenience constructor
  /// collapses this universe; the explicit-list constructor trusts its
  /// caller but still records the universe for snapshot identity (a
  /// snapshot taken under one model never resumes under another).
  fault::FaultUniverse fault_model = fault::FaultUniverse::kStuckAt;
  /// Fault-simulator engine options (threads, differential vs full-sweep).
  fault::FaultSimConfig faultsim;
  /// State-knowledge layer options (disabled by default; enabling it must
  /// not change which faults are detectable, only how fast they resolve).
  state::StateStoreConfig state_store;
  /// Speculative per-fault targeting lanes for the deterministic engines
  /// (lanes = 1 keeps the exact serial path; lane count never changes
  /// results, only wall clock).
  util::TargetParallelConfig target_parallel;
  /// Auto-checkpoint policy (inert by default).
  CheckpointConfig checkpoint;
};

class Session {
 public:
  /// Builds the session around an explicit (already collapsed) fault list.
  Session(const netlist::Circuit& c, fault::FaultList faults,
          SessionConfig config = {});
  /// Convenience: collapses the circuit's fault universe itself.
  explicit Session(const netlist::Circuit& c, SessionConfig config = {});

  const netlist::Circuit& circuit() const { return c_; }
  const SessionConfig& config() const { return config_; }
  FaultManager& faults() { return faults_; }
  const FaultManager& faults() const { return faults_; }
  TestSetBuilder& tests() { return tests_; }
  const TestSetBuilder& tests() const { return tests_; }
  fault::FaultSimulator& simulator() { return fsim_; }
  const fault::FaultSimulator& simulator() const { return fsim_; }
  EngineCounters& counters() { return counters_; }
  const EngineCounters& counters() const { return counters_; }
  state::StateStore& state_store() { return store_; }
  const state::StateStore& state_store() const { return store_; }

  /// Wall-clock seconds since construction (what PassOutcome::time_s
  /// reports), plus the elapsed time carried over from a resumed snapshot.
  double elapsed_s() const { return time_offset_s_ + total_.seconds(); }

  /// Observer for per-pass reporting; nullptr (default) disables it.  Not
  /// owned; must outlive run().
  void set_observer(ProgressObserver* observer) { observer_ = observer; }
  ProgressObserver* observer() const { return observer_; }

  /// Commits a verified candidate test: simulates it on the session fault
  /// simulator as a continuation of the test set so far (fault dropping),
  /// then appends it with a segment boundary.  Returns the number of faults
  /// the simulator newly detected.  Callers credit those detections to the
  /// FaultManager via faults().absorb_detections(simulator().detected()).
  std::size_t commit_test(sim::Sequence candidate);

  /// Engine bookkeeping: one completed engine round (a GA round of the
  /// simulation-based generators), and fitness-evaluation counts.
  void note_round() { ++rounds_; }
  void note_evaluations(long n) { evaluations_ += n; }
  long evaluations() const { return evaluations_; }

  /// Drives `engine` through `schedule`: per pass, clears the
  /// aborted-this-pass flags, derives the pass deadline from
  /// PassConfig::pass_budget_s, runs the engine, and records the cumulative
  /// PassOutcome row (reported to the observer).  Returns the unified
  /// result; the session stays live, so callers can keep stepping engines
  /// or run another schedule on the same fault population.
  ///
  /// On a session primed by resume(), completed passes are skipped (their
  /// saved outcome rows are prepended verbatim) and the first unfinished
  /// pass continues from the checkpointed cursor without re-clearing the
  /// aborted flags.  If the checkpoint policy stops the run mid-pass, the
  /// partial pass gets no outcome row and the result carries the state as
  /// of the stop.
  SessionResult run(Engine& engine, const PassSchedule& schedule);

  // -- Snapshot / resume -----------------------------------------------------

  /// Serializes the complete live session state to `path` (atomically):
  /// circuit/fault-list identity, fault statuses and pass cursor, committed
  /// segments, StateStore caches, counters, simulator stats, pass progress,
  /// and — when called during run() — the running engine's private state.
  void checkpoint(const std::string& path) const;

  /// Restores a snapshot into this freshly-constructed session (same
  /// circuit, same fault list, same config) and primes `engine` with its
  /// checkpointed private state.  The simulator machines are rebuilt by
  /// replaying the committed segments — reproducing the uninterrupted
  /// run()'s exact call sequence — and every component digest recorded at
  /// checkpoint time is re-verified after load.  Throws
  /// serialize::SnapshotError on any identity or integrity mismatch.
  void resume(const std::string& path, Engine& engine);

  /// Engine hook: one fully-completed unit of work.  Applies the
  /// auto-checkpoint policy (interval/tick/stop-after) and may set
  /// stop_requested().
  void checkpoint_tick();
  /// True once the checkpoint policy has asked the engine to wind down;
  /// engine loops treat it like an expired deadline.
  bool stop_requested() const { return stop_requested_; }

 private:
  const netlist::Circuit& c_;
  FaultManager faults_;
  SessionConfig config_;
  fault::FaultSimulator fsim_;
  state::StateStore store_;
  TestSetBuilder tests_;
  EngineCounters counters_;
  long rounds_ = 0;
  long evaluations_ = 0;
  util::Stopwatch total_;
  ProgressObserver* observer_ = nullptr;

  // Pass progress, serialized so run() can continue a schedule.
  std::vector<PassOutcome> completed_outcomes_;
  bool pass_in_progress_ = false;
  long run_rounds_base_ = 0;  // rounds_ at the start of the current run()
  double time_offset_s_ = 0.0;
  bool resume_primed_ = false;    // next run() continues a restored schedule
  bool resume_mid_pass_ = false;  // skip begin_pass() on the next pass entry

  // Auto-checkpoint bookkeeping.
  const Engine* running_engine_ = nullptr;
  long ticks_ = 0;
  double last_checkpoint_s_ = 0.0;
  bool stop_requested_ = false;
};

}  // namespace gatpg::session
