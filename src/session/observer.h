// Progress reporting shared by every session engine.
//
// All engines report through one spigot: cumulative per-pass PassOutcome
// rows (the paper's Table II/III lines), the Fig. 1 activity counters, and
// the fault simulator's SimStats.  Benches, logging, and future telemetry
// attach a ProgressObserver to the Session instead of growing
// engine-specific result plumbing.
#pragma once

#include <cstddef>

#include "fault/faultsim.h"
#include "session/pass.h"
#include "state/state_store.h"

namespace gatpg::session {

class Session;
struct SessionResult;

/// Cumulative totals at the end of each pass — one row of Table II/III.
struct PassOutcome {
  std::size_t detected = 0;
  std::size_t vectors = 0;
  std::size_t untestable = 0;
  double time_s = 0.0;
};

/// Internal-activity counters (Fig. 1 instrumentation), accumulated across
/// every pass of a session run.
struct EngineCounters {
  long targeted = 0;             // fault targeting attempts
  long forward_solutions = 0;    // excitation/propagation solutions found
  long ga_invocations = 0;
  long ga_successes = 0;
  long det_justify_calls = 0;
  long det_justify_successes = 0;
  long verify_failures = 0;      // candidate tests rejected by fault sim
  long no_justification_needed = 0;
  long aborted_faults = 0;       // per-pass limit hits
  long committed_tests = 0;      // targeted tests committed to the test set
  // Deterministic-engine effort (forward search + deterministic
  // justification), summed over every targeted fault.
  long det_decisions = 0;
  long det_backtracks = 0;
  long det_gate_evals = 0;  // implication gate evaluations (both planes)
  long det_events = 0;      // incremental-implication event-queue pops
  // FrameModel pooling: absolute tallies of the engine's model pool (not
  // per-pass deltas).  builds ≪ acquires proves per-fault models are being
  // reset-and-reused instead of reconstructed; engines without a pool
  // leave both zero.
  long det_model_builds = 0;
  long det_model_acquires = 0;
  // State-knowledge layer effectiveness (mirrored from the session's
  // StateStore at every pass boundary; all zero when the store is off).
  state::StateStoreStats store;

  EngineCounters& operator+=(const EngineCounters& o) {
    targeted += o.targeted;
    forward_solutions += o.forward_solutions;
    ga_invocations += o.ga_invocations;
    ga_successes += o.ga_successes;
    det_justify_calls += o.det_justify_calls;
    det_justify_successes += o.det_justify_successes;
    verify_failures += o.verify_failures;
    no_justification_needed += o.no_justification_needed;
    aborted_faults += o.aborted_faults;
    committed_tests += o.committed_tests;
    det_decisions += o.det_decisions;
    det_backtracks += o.det_backtracks;
    det_gate_evals += o.det_gate_evals;
    det_events += o.det_events;
    det_model_builds += o.det_model_builds;
    det_model_acquires += o.det_model_acquires;
    store += o.store;
    return *this;
  }
};

/// Per-targeted-fault deterministic-engine effort (the fault's SearchStats
/// aggregated over forward search and deterministic justification).
struct TargetEffort {
  std::size_t fault_index = 0;
  /// Model of the targeted fault (observers reporting per-fault effort can
  /// distinguish stuck-at from transition targets in mixed tooling).
  fault::FaultModel model = fault::FaultModel::kStuckAt;
  long decisions = 0;
  long backtracks = 0;
  long gate_evals = 0;
  long events = 0;
};

/// Observer hook.  All callbacks default to no-ops; the session pointer
/// stays valid for the duration of the call only.  Observers may read the
/// session's FaultManager, TestSetBuilder, counters, and simulator stats;
/// they must not mutate session state.
class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;

  virtual void on_session_begin(const Session& /*session*/) {}
  virtual void on_pass_begin(const Session& /*session*/,
                             std::size_t /*pass_index*/,
                             const PassConfig& /*pass*/) {}
  /// `outcome` is the cumulative row just appended for `pass_index`.
  virtual void on_pass_end(const Session& /*session*/,
                           std::size_t /*pass_index*/,
                           const PassOutcome& /*outcome*/) {}
  /// Fired by the targeted engines after each deterministic fault target
  /// resolves, with that fault's aggregated search effort.
  virtual void on_target_end(const Session& /*session*/,
                             const TargetEffort& /*effort*/) {}
  virtual void on_session_end(const Session& /*session*/,
                              const SessionResult& /*result*/) {}
};

}  // namespace gatpg::session
