// The engine interface every test generator implements.
//
// An Engine is a strategy for resolving faults against the shared session
// substrate (FaultManager + TestSetBuilder + FaultSimulator): the GA-HITEC
// hybrid, the deterministic HITEC baseline (the hybrid engine under a
// deterministic-only schedule), the simulation-based GA, the deterministic
// single-target engine, random patterns, and compositions of these (the
// alternating hybrid).  Session::run drives one engine through a
// PassSchedule; the stepwise interface lets composite engines interleave
// units of work from several engines over one fault population.
#pragma once

#include "session/pass.h"
#include "util/stopwatch.h"

namespace gatpg::serialize {
class Writer;
class Reader;
}  // namespace gatpg::serialize

namespace gatpg::session {

class Session;

class Engine {
 public:
  virtual ~Engine() = default;

  /// Engine name for observers/benches ("ga-hitec", "sim-ga", ...).
  virtual const char* name() const = 0;

  /// One pass over the shared fault population under `pass` limits.
  /// `deadline` is the pass budget (unlimited when pass_budget_s == 0).
  /// The engine reads and updates session.faults()/tests()/simulator() and
  /// reports through session.counters().
  virtual void run(Session& session, const PassConfig& pass,
                   const util::Deadline& deadline) = 0;

  /// Optional stepwise interface for composition: one engine-defined unit
  /// of work (a GA round, one targeted fault).  Returns the number of newly
  /// detected faults.  Engines that do not support stepping return 0.
  virtual std::size_t step(Session& /*session*/,
                           const util::Deadline& /*deadline*/) {
    return 0;
  }

  // -- Snapshot hooks --------------------------------------------------------
  // Engine-private progress that lives outside the session substrate: RNG
  // stream positions, round/stagnation counters, round-robin cursors.  The
  // session writes the payload inside its own engine section (so hooks use
  // the plain field API, no begin_section), records name() next to it, and
  // refuses to load a snapshot into an engine of a different name.  Engines
  // with no private state (none today) keep the no-op defaults.  load_state
  // must also prime the engine to skip any work the checkpointed run had
  // already performed before its first unit (audition probes, pass-entry
  // initialization) — resumed runs must replay nothing.

  virtual void save_state(serialize::Writer& /*w*/) const {}
  virtual void load_state(serialize::Reader& /*r*/) {}
};

}  // namespace gatpg::session
