// Session::checkpoint / Session::resume — the snapshot side of the session
// layer, kept out of session.cpp so the orchestration loop stays readable.
//
// Snapshot layout (inside the serialize::Archive payload):
//
//   IDNT  circuit name + structural signature, fault-list identity digest,
//         fault-sim engine shape (differential/window/width), engine name
//   FMGR  FaultManager (statuses, aborted flags, counters, pass cursor)
//   TSET  TestSetBuilder (committed segments; flat set rebuilt on load)
//   STOR  StateStore (all four caches + stamps + stats, config-checked)
//   CNTR  EngineCounters (including the mirrored store stats)
//   SIMS  fault-simulator SimStats + detected count at checkpoint time
//   PROG  pass progress (completed outcome rows, mid-pass flag, rounds,
//         evaluations, elapsed wall-clock, tick counter)
//   DIGS  component digests at checkpoint time (re-verified after load)
//   ENGS  the running engine's private state (RNG streams, cursors)
//
// Resume rebuilds the fault-simulator machines by *replaying* the committed
// segments through fsim_.run() — the exact call sequence the uninterrupted
// run performed — rather than poking simulator internals.  The PR 2 window-
// equivalence property guarantees the machines land in the identical state;
// the recorded detected-count and SimStats then cross-check the replay (the
// stats are restored wholesale afterwards because what-if costs are not
// replayable).
#include <utility>

#include "serialize/archive.h"
#include "session/session.h"

namespace gatpg::session {

namespace {

/// FNV-1a-64 over the circuit graph: node types, fanins, and the PI/PO/FF
/// orderings that define vector/state bit positions.  Two circuits with the
/// same signature produce the same simulations, which is what snapshot
/// identity actually requires.
std::uint64_t circuit_signature(const netlist::Circuit& c) {
  serialize::Digest d;
  d.add_u64(c.node_count());
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    d.add_byte(static_cast<std::uint8_t>(c.type(n)));
    const auto fanins = c.fanins(n);
    d.add_u64(fanins.size());
    for (const netlist::NodeId f : fanins) d.add_u64(f);
  }
  for (const auto span : {c.primary_inputs(), c.primary_outputs(), c.flip_flops()}) {
    d.add_u64(span.size());
    for (const netlist::NodeId n : span) d.add_u64(n);
  }
  return d.value();
}

void write_counters(serialize::Writer& w, const EngineCounters& ec) {
  const long* fields[] = {
      &ec.targeted,           &ec.forward_solutions, &ec.ga_invocations,
      &ec.ga_successes,       &ec.det_justify_calls, &ec.det_justify_successes,
      &ec.verify_failures,    &ec.no_justification_needed,
      &ec.aborted_faults,     &ec.committed_tests,   &ec.det_decisions,
      &ec.det_backtracks,     &ec.det_gate_evals,    &ec.det_events,
      &ec.det_model_builds,   &ec.det_model_acquires};
  for (const long* f : fields) w.i64(*f);
  const long* store_fields[] = {
      &ec.store.seq_hits,          &ec.store.seq_misses,
      &ec.store.seq_inserts,       &ec.store.seq_verify_failures,
      &ec.store.unjust_hits,       &ec.store.unjust_misses,
      &ec.store.unjust_inserts,    &ec.store.unjust_subsumed,
      &ec.store.reachable_inserts, &ec.store.near_miss_inserts,
      &ec.store.ga_seeds_served,   &ec.store.forward_cache_hits,
      &ec.store.forward_cache_inserts};
  for (const long* f : store_fields) w.i64(*f);
}

void read_counters(serialize::Reader& r, EngineCounters& ec) {
  long* fields[] = {
      &ec.targeted,           &ec.forward_solutions, &ec.ga_invocations,
      &ec.ga_successes,       &ec.det_justify_calls, &ec.det_justify_successes,
      &ec.verify_failures,    &ec.no_justification_needed,
      &ec.aborted_faults,     &ec.committed_tests,   &ec.det_decisions,
      &ec.det_backtracks,     &ec.det_gate_evals,    &ec.det_events,
      &ec.det_model_builds,   &ec.det_model_acquires};
  for (long* f : fields) *f = static_cast<long>(r.i64());
  long* store_fields[] = {
      &ec.store.seq_hits,          &ec.store.seq_misses,
      &ec.store.seq_inserts,       &ec.store.seq_verify_failures,
      &ec.store.unjust_hits,       &ec.store.unjust_misses,
      &ec.store.unjust_inserts,    &ec.store.unjust_subsumed,
      &ec.store.reachable_inserts, &ec.store.near_miss_inserts,
      &ec.store.ga_seeds_served,   &ec.store.forward_cache_hits,
      &ec.store.forward_cache_inserts};
  for (long* f : store_fields) *f = static_cast<long>(r.i64());
}

void write_sim_stats(serialize::Writer& w, const fault::SimStats& st) {
  w.u64(st.gate_evals);
  w.u64(st.good_gate_evals);
  w.u64(st.frames);
  w.u64(st.group_vectors);
  w.u64(st.group_vectors_skipped);
  w.u64(st.groups_repacked);
}

fault::SimStats read_sim_stats(serialize::Reader& r) {
  fault::SimStats st;
  st.gate_evals = r.u64();
  st.good_gate_evals = r.u64();
  st.frames = r.u64();
  st.group_vectors = r.u64();
  st.group_vectors_skipped = r.u64();
  st.groups_repacked = r.u64();
  return st;
}

}  // namespace

void Session::checkpoint(const std::string& path) const {
  serialize::Writer w;

  w.begin_section("IDNT");
  w.str(c_.name());
  w.u64(circuit_signature(c_));
  w.u8(static_cast<std::uint8_t>(config_.fault_model));
  w.u64(fault::identity_digest(faults_.list()));
  w.boolean(config_.faultsim.differential);
  w.u32(config_.faultsim.window);
  w.u32(config_.faultsim.width);
  w.str(running_engine_ ? running_engine_->name() : "");
  w.end_section();

  faults_.save(w);
  tests_.save(w);
  store_.save(w);

  w.begin_section("CNTR");
  write_counters(w, counters_);
  w.end_section();

  w.begin_section("SIMS");
  write_sim_stats(w, fsim_.stats());
  w.u64(fsim_.detected_count());
  w.end_section();

  w.begin_section("PROG");
  w.u64(completed_outcomes_.size());
  for (const PassOutcome& po : completed_outcomes_) {
    w.u64(po.detected);
    w.u64(po.vectors);
    w.u64(po.untestable);
    w.f64(po.time_s);
  }
  w.boolean(pass_in_progress_);
  w.i64(rounds_);
  w.i64(evaluations_);
  w.i64(run_rounds_base_);
  w.f64(elapsed_s());
  w.i64(ticks_);
  w.end_section();

  w.begin_section("DIGS");
  w.u64(faults_.digest());
  w.u64(tests_.digest());
  w.u64(store_.digest());
  w.end_section();

  w.begin_section("ENGS");
  if (running_engine_) running_engine_->save_state(w);
  w.end_section();

  w.write_file(path);
}

void Session::resume(const std::string& path, Engine& engine) {
  if (tests_.segment_count() != 0 || !completed_outcomes_.empty()) {
    throw serialize::SnapshotError(
        "resume requires a freshly constructed session");
  }
  serialize::Reader r = serialize::Reader::from_file(path);

  r.enter_section("IDNT");
  const std::string circuit_name = r.str();
  const std::uint64_t signature = r.u64();
  const auto universe = static_cast<fault::FaultUniverse>(r.u8());
  const std::uint64_t fault_identity = r.u64();
  const bool differential = r.boolean();
  const std::uint32_t window = r.u32();
  const std::uint32_t width = r.u32();
  const std::string engine_name = r.str();
  r.leave_section();
  if (circuit_name != c_.name() || signature != circuit_signature(c_)) {
    throw serialize::SnapshotError("snapshot was taken on circuit '" +
                                   circuit_name + "', not on '" + c_.name() +
                                   "'");
  }
  if (universe != config_.fault_model) {
    throw serialize::SnapshotError(
        std::string("snapshot was taken under the '") +
        fault::universe_name(universe) + "' fault model, not under '" +
        fault::universe_name(config_.fault_model) + "'");
  }
  if (fault_identity != fault::identity_digest(faults_.list())) {
    throw serialize::SnapshotError(
        "snapshot fault list does not match this session's fault list");
  }
  // Thread count is free to change (results are thread-count-independent),
  // but the engine shape must match or the replayed SimStats and grouping
  // counters would diverge from the uninterrupted run.
  if (differential != config_.faultsim.differential ||
      window != config_.faultsim.window || width != config_.faultsim.width) {
    throw serialize::SnapshotError(
        "snapshot fault-sim engine shape (differential/window/width) "
        "differs from this session's config");
  }
  if (engine_name != engine.name()) {
    throw serialize::SnapshotError("snapshot engine '" + engine_name +
                                   "' does not match resuming engine '" +
                                   engine.name() + "'");
  }

  faults_.load(r);
  tests_.load(r);
  store_.load(r);

  r.enter_section("CNTR");
  read_counters(r, counters_);
  r.leave_section();

  r.enter_section("SIMS");
  const fault::SimStats saved_stats = read_sim_stats(r);
  const std::uint64_t saved_detected = r.u64();
  r.leave_section();

  r.enter_section("PROG");
  completed_outcomes_.resize(r.count(32));  // three u64 + one f64 per row
  for (PassOutcome& po : completed_outcomes_) {
    po.detected = r.u64();
    po.vectors = r.u64();
    po.untestable = r.u64();
    po.time_s = r.f64();
  }
  const bool mid_pass = r.boolean();
  rounds_ = static_cast<long>(r.i64());
  evaluations_ = static_cast<long>(r.i64());
  run_rounds_base_ = static_cast<long>(r.i64());
  time_offset_s_ = r.f64();
  ticks_ = static_cast<long>(r.i64());
  r.leave_section();

  r.enter_section("DIGS");
  const std::uint64_t dig_faults = r.u64();
  const std::uint64_t dig_tests = r.u64();
  const std::uint64_t dig_store = r.u64();
  r.leave_section();

  r.enter_section("ENGS");
  if (!engine_name.empty()) engine.load_state(r);
  r.leave_section();

  // Rebuild the simulator machines by replaying the committed segments —
  // the identical run() call sequence the checkpointed session performed.
  // No good-state sink: the StateStore's reachable log was loaded directly
  // and must not be double-fed.
  for (const sim::Sequence& segment : tests_.segments()) fsim_.run(segment);
  if (fsim_.detected_count() != saved_detected) {
    throw serialize::SnapshotError(
        "snapshot replay detected a different fault count than the "
        "checkpointed run (simulator divergence)");
  }
  fsim_.restore_stats(saved_stats);

  if (faults_.digest() != dig_faults || tests_.digest() != dig_tests ||
      store_.digest() != dig_store) {
    throw serialize::SnapshotError(
        "component digest mismatch after load (corrupt or inconsistent "
        "snapshot)");
  }

  pass_in_progress_ = mid_pass;
  resume_mid_pass_ = mid_pass;
  resume_primed_ = true;
  stop_requested_ = false;
}

}  // namespace gatpg::session
