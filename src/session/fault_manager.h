// Shared fault-population bookkeeping for every test generator.
//
// GA-HITEC's defining structure is repeated passes over one fault list by
// different engines; FaultManager is the single owner of that population's
// lifecycle so the engines stop growing private copies of it.  It tracks a
// three-state status per collapsed fault (undetected / detected / proven
// untestable) plus an aborted-this-pass flag, performs fault dropping with
// detection credit against the session fault simulator's drop list, and
// provides the deterministic iteration/sampling orders the engines share:
// ascending undetected scans, round-robin target selection, and the
// partial-Fisher-Yates fault sampling of the simulation-based GA.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/faultlist.h"
#include "util/rng.h"

namespace gatpg::serialize {
class Writer;
class Reader;
}  // namespace gatpg::serialize

namespace gatpg::session {

enum class FaultStatus : unsigned char { kUndetected, kDetected, kUntestable };

class FaultManager {
 public:
  explicit FaultManager(fault::FaultList list);

  const fault::FaultList& list() const { return list_; }
  const fault::Fault& fault(std::size_t i) const { return list_.faults[i]; }
  std::size_t size() const { return status_.size(); }

  FaultStatus status(std::size_t i) const { return status_[i]; }
  const std::vector<FaultStatus>& status() const { return status_; }
  bool undetected(std::size_t i) const {
    return status_[i] == FaultStatus::kUndetected;
  }

  /// Lifecycle transitions.  Marking an already-detected fault detected is a
  /// no-op; untestable claims require the fault to still be undetected (a
  /// detected fault is by definition testable).
  void mark_detected(std::size_t i);
  void mark_untestable(std::size_t i);

  /// Fault dropping with detection credit: marks kDetected every fault whose
  /// flag is set in the fault simulator's drop list.  Returns how many were
  /// newly credited.  Untestable faults are never credited (the simulator
  /// cannot detect them; asserting so keeps the claim sound).
  std::size_t absorb_detections(const std::vector<char>& fsim_detected);

  // -- Aborted-this-pass lifecycle -----------------------------------------
  // A search stopped by a time/backtrack limit is "aborted", never
  // "untestable"; the flag is per pass (the next pass retries with larger
  // limits), the total is an all-run counter.

  void begin_pass();
  void mark_aborted(std::size_t i);
  bool aborted_this_pass(std::size_t i) const { return aborted_[i] != 0; }
  long aborted_total() const { return aborted_total_; }

  std::size_t detected_count() const { return num_detected_; }
  std::size_t untestable_count() const { return num_untestable_; }
  std::size_t undetected_count() const {
    return size() - num_detected_ - num_untestable_;
  }
  /// True when no fault is left undetected (everything detected or proven
  /// untestable) — the engines' common completion condition.
  bool all_resolved() const { return undetected_count() == 0; }

  /// Indices with status kUndetected, ascending — the deterministic
  /// iteration order of the targeted engines.
  std::vector<std::size_t> undetected_indices() const;

  /// Indices not yet detected (kUndetected plus kUntestable), ascending —
  /// the population the simulation-based engines grade candidates against
  /// (an unproven untestable claim must not shrink their fitness universe).
  std::vector<std::size_t> undropped_indices() const;

  /// Unbiased sample of at most `max` undropped faults via partial
  /// Fisher-Yates, drawing from `rng` only when the population exceeds
  /// `max` (the legacy simulation-GA sampling contract, preserved so seeded
  /// runs reproduce bit-identically).
  std::vector<std::size_t> sample_undropped(util::Rng& rng,
                                            std::size_t max) const;

  /// Round-robin target selection: the first undetected index at or after
  /// `start` (wrapping); size() when everything is resolved.
  std::size_t next_undetected(std::size_t start) const;

  // -- Pass cursor -----------------------------------------------------------
  // Progress marker of the targeted engines' ascending scan within the
  // current pass, owned here so a mid-pass checkpoint can resume the scan at
  // the exact next target.  begin_pass() rewinds it.

  std::size_t pass_cursor() const { return pass_cursor_; }
  void set_pass_cursor(std::size_t i) { pass_cursor_ = i; }

  // -- Snapshot support ------------------------------------------------------

  /// FNV-1a-64 over the status array plus the aborted flags and counters —
  /// the resume identity check compares this against the uninterrupted run.
  std::uint64_t digest() const;
  void save(serialize::Writer& w) const;
  /// Restores statuses/flags/counters/cursor.  The fault list itself is NOT
  /// serialized (it is regenerated from the circuit); the caller verifies
  /// list identity via fault::identity_digest before loading.
  void load(serialize::Reader& r);

 private:
  fault::FaultList list_;
  std::vector<FaultStatus> status_;
  std::vector<char> aborted_;  // this pass only; cleared by begin_pass()
  std::size_t num_detected_ = 0;
  std::size_t num_untestable_ = 0;
  long aborted_total_ = 0;
  std::size_t pass_cursor_ = 0;
};

}  // namespace gatpg::session
