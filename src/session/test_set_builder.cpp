#include "session/test_set_builder.h"

#include <utility>

namespace gatpg::session {

std::size_t TestSetBuilder::commit(sim::Sequence segment) {
  test_set_.insert(test_set_.end(), segment.begin(), segment.end());
  segments_.push_back(std::move(segment));
  return segments_.size() - 1;
}

}  // namespace gatpg::session
