#include "session/test_set_builder.h"

#include <utility>

#include "serialize/archive.h"

namespace gatpg::session {

std::size_t TestSetBuilder::commit(sim::Sequence segment) {
  test_set_.insert(test_set_.end(), segment.begin(), segment.end());
  segments_.push_back(std::move(segment));
  return segments_.size() - 1;
}

std::uint64_t TestSetBuilder::digest() const {
  serialize::Digest d;
  d.add_u64(segments_.size());
  for (const sim::Sequence& seg : segments_) {
    d.add_u64(seg.size());
    for (const sim::Vector3& vec : seg) {
      d.add_u64(vec.size());
      for (const sim::V3 v : vec) d.add_byte(static_cast<std::uint8_t>(v));
    }
  }
  return d.value();
}

void TestSetBuilder::save(serialize::Writer& w) const {
  w.begin_section("TSET");
  w.u64(segments_.size());
  for (const sim::Sequence& seg : segments_) {
    w.u64(seg.size());
    for (const sim::Vector3& vec : seg) {
      w.u64(vec.size());
      for (const sim::V3 v : vec) w.u8(static_cast<std::uint8_t>(v));
    }
  }
  w.end_section();
}

void TestSetBuilder::load(serialize::Reader& r) {
  r.enter_section("TSET");
  test_set_.clear();
  segments_.clear();
  const std::uint64_t num_segments = r.count(8);
  segments_.reserve(num_segments);
  for (std::uint64_t s = 0; s < num_segments; ++s) {
    sim::Sequence seg(r.count(8));  // each vector carries its u64 length
    for (sim::Vector3& vec : seg) {
      vec.resize(r.count(1));  // one byte per ternary value
      for (sim::V3& v : vec) {
        const std::uint8_t byte = r.u8();
        if (byte > static_cast<std::uint8_t>(sim::V3::kX))
          throw serialize::SnapshotError("snapshot: invalid ternary value");
        v = static_cast<sim::V3>(byte);
      }
    }
    test_set_.insert(test_set_.end(), seg.begin(), seg.end());
    segments_.push_back(std::move(seg));
  }
  r.leave_section();
}

}  // namespace gatpg::session
