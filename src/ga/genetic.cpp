#include "ga/genetic.h"

#include <algorithm>
#include <stdexcept>

namespace gatpg::ga {

GaEngine::GaEngine(GaConfig config) : config_(config), rng_(config.seed) {
  if (config_.population_size == 0 || config_.population_size % 2 != 0) {
    throw std::invalid_argument("population size must be even and nonzero");
  }
  if (config_.chromosome_bits == 0) {
    throw std::invalid_argument("chromosome_bits must be nonzero");
  }
}

Chromosome GaEngine::random_chromosome() {
  Chromosome c(config_.chromosome_bits);
  for (auto& bit : c) bit = rng_.bit() ? 1 : 0;
  return c;
}

void GaEngine::crossover(const Chromosome& a, const Chromosome& b,
                         Chromosome& c1, Chromosome& c2) {
  c1 = a;
  c2 = b;
  if (!rng_.chance(config_.crossover_probability)) return;
  for (std::size_t i = 0; i < c1.size(); ++i) {
    if (rng_.bit()) std::swap(c1[i], c2[i]);
  }
}

void GaEngine::mutate(Chromosome& c) {
  for (auto& bit : c) {
    if (rng_.chance(config_.mutation_probability)) bit ^= 1;
  }
}

std::vector<std::size_t> GaEngine::tournament_parents(
    std::span<const double> fitness, util::Rng& rng) {
  const std::size_t n = fitness.size();
  std::vector<std::size_t> parents;
  parents.reserve(n);
  std::vector<std::size_t> pool(n);
  // Two passes: each pass permutes the population into n/2 disjoint pairs
  // and selects the better of each pair, so after two passes n parents have
  // been drawn and every individual took part in exactly two tournaments.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      std::swap(pool[i - 1], pool[rng.below(i)]);
    }
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      const std::size_t a = pool[i];
      const std::size_t b = pool[i + 1];
      parents.push_back(fitness[a] >= fitness[b] ? a : b);
    }
  }
  return parents;
}

std::vector<std::size_t> GaEngine::select_parents(
    std::span<const double> fitness) {
  if (config_.selection == SelectionScheme::kTournamentWithoutReplacement) {
    return tournament_parents(fitness, rng_);
  }
  // Proportionate (roulette wheel).  Negative fitness is clamped to zero; a
  // degenerate all-zero wheel falls back to uniform draws.  The wheel is a
  // prefix-sum searched with std::lower_bound — O(log n) per draw instead
  // of the O(n) linear scan, with one rng_.uniform() (or rng_.below on the
  // degenerate wheel) per parent in the same order as before, so seeded
  // runs draw the same random stream.  lower_bound matches the scan's
  // boundary rule: the first index whose cumulative weight reaches the
  // spin wins, and zero-weight slots are skipped in favor of the first
  // slot of each tie run.
  const std::size_t n = fitness.size();
  std::vector<double> cumulative(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::max(fitness[i], 0.0);
    cumulative[i] = total;
  }
  std::vector<std::size_t> parents(n);
  for (auto& p : parents) {
    if (total <= 0.0) {
      p = rng_.below(n);
      continue;
    }
    const double spin = rng_.uniform() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), spin);
    p = it == cumulative.end()
            ? n - 1
            : static_cast<std::size_t>(it - cumulative.begin());
  }
  return parents;
}

GaResult GaEngine::run(const BatchEvaluator& evaluate) {
  const std::size_t n = config_.population_size;
  std::vector<Chromosome> population(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < config_.seeds.size()) {
      Chromosome seeded = config_.seeds[i];
      seeded.resize(config_.chromosome_bits, 0);
      population[i] = std::move(seeded);
    } else {
      population[i] = random_chromosome();
    }
  }
  std::vector<double> fitness(n, 0.0);

  GaResult result;
  result.best_fitness = -1.0;

  // "m generations" counts evaluated populations: the random initial
  // population is generation 1 and each breeding step produces the next.
  for (unsigned gen = 1; gen <= config_.generations; ++gen) {
    const bool stop = evaluate(population, fitness);
    result.evaluations += n;
    result.generations_run = gen;
    for (std::size_t i = 0; i < n; ++i) {
      if (fitness[i] > result.best_fitness) {
        result.best_fitness = fitness[i];
        result.best = population[i];
      }
    }
    if (stop) {
      result.stopped_early = true;
      break;
    }
    if (gen == config_.generations) break;

    const std::vector<std::size_t> parents = select_parents(fitness);
    std::vector<Chromosome> next;
    next.reserve(n);
    for (std::size_t i = 0; i + 1 < parents.size(); i += 2) {
      Chromosome c1, c2;
      crossover(population[parents[i]], population[parents[i + 1]], c1, c2);
      mutate(c1);
      mutate(c2);
      next.push_back(std::move(c1));
      next.push_back(std::move(c2));
    }
    population = std::move(next);
  }
  return result;
}

}  // namespace gatpg::ga
