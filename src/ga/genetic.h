// Generic simple-GA engine (Goldberg-style), as specified in §II of the
// paper:
//   * binary-coded individuals,
//   * tournament selection without replacement (two random individuals are
//     removed from the pool, the better is selected; the pool refills only
//     once everyone has been removed),
//   * uniform crossover with crossover probability 1 (parents always cross;
//     each position swaps with probability 1/2),
//   * per-character mutation with probability 1/64,
//   * non-overlapping generations,
//   * the best individual seen in any generation is saved.
// Proportionate (roulette-wheel) selection is also provided, purely for the
// bench that reproduces the paper's remark that fitness squaring changes
// proportionate selection but is a no-op under tournament selection.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/rng.h"

namespace gatpg::ga {

/// A binary chromosome; each element is 0 or 1.
using Chromosome = std::vector<std::uint8_t>;

enum class SelectionScheme {
  kTournamentWithoutReplacement,
  kProportionate,
};

struct GaConfig {
  std::size_t population_size = 64;  // must be even
  unsigned generations = 4;
  std::size_t chromosome_bits = 0;
  double crossover_probability = 1.0;
  double mutation_probability = 1.0 / 64.0;
  SelectionScheme selection = SelectionScheme::kTournamentWithoutReplacement;
  std::uint64_t seed = 1;
  /// Seed individuals for the initial population: the first seeds.size()
  /// slots are taken from here (truncated to the population size; each
  /// chromosome resized to chromosome_bits, zero-padded), the remaining
  /// slots stay random.  An empty list leaves the engine's random stream —
  /// and hence seeded runs — exactly as before.
  std::vector<Chromosome> seeds;
};

struct GaResult {
  Chromosome best;
  double best_fitness = 0.0;
  unsigned generations_run = 0;
  std::size_t evaluations = 0;
  bool stopped_early = false;  // the evaluator requested termination
};

class GaEngine {
 public:
  /// Evaluates a whole population at once and writes one fitness per
  /// individual.  Returning true requests early termination (e.g. a state
  /// justification sequence was found); the engine still records fitnesses
  /// from this last batch.  Batch evaluation exists so the caller can pack
  /// 64 individuals into one bit-parallel simulation.
  using BatchEvaluator = std::function<bool(
      std::span<const Chromosome> population, std::span<double> fitness)>;

  explicit GaEngine(GaConfig config);

  /// Runs the full GA and returns the best individual found.
  GaResult run(const BatchEvaluator& evaluate);

  /// Exposed for tests: one tournament-without-replacement parent draw over
  /// an externally scored population.
  static std::vector<std::size_t> tournament_parents(
      std::span<const double> fitness, util::Rng& rng);

 private:
  Chromosome random_chromosome();
  void crossover(const Chromosome& a, const Chromosome& b, Chromosome& c1,
                 Chromosome& c2);
  void mutate(Chromosome& c);
  std::vector<std::size_t> select_parents(std::span<const double> fitness);

  GaConfig config_;
  util::Rng rng_;
};

}  // namespace gatpg::ga
